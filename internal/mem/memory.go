package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// pageBytes is the allocation granule of the sparse backing memory.
const pageBytes = 1 << 12

// Memory is the flat, sparse physical memory backing the machine. It is the
// single functional home of all data (see the package comment); the caches
// above it only model timing.
type Memory struct {
	pages map[uint64][]byte

	// onWrite, when set, observes every functional write (address and
	// byte count) before it lands. Because Memory is the single
	// functional home of all data, this hook sees every way the machine
	// can change a byte — committed stores, SC, and loader writes — which
	// is exactly the invalidation feed the basic-block translation cache
	// needs to stay coherent with the bytes fetch would read.
	onWrite func(addr uint64, n int)
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

func (m *Memory) page(addr uint64) []byte {
	pn := addr / pageBytes
	p, ok := m.pages[pn]
	if !ok {
		p = make([]byte, pageBytes)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		p := m.page(addr + uint64(i))
		off := int((addr + uint64(i)) % pageBytes)
		c := copy(out[i:], p[off:])
		i += c
	}
	return out
}

// SetWriteHook registers fn to observe every functional write. One hook at
// a time; nil disables.
func (m *Memory) SetWriteHook(fn func(addr uint64, n int)) { m.onWrite = fn }

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	if m.onWrite != nil {
		m.onWrite(addr, len(data))
	}
	for i := 0; i < len(data); {
		p := m.page(addr + uint64(i))
		off := int((addr + uint64(i)) % pageBytes)
		c := copy(p[off:], data[i:])
		i += c
	}
}

// Read returns size bytes at addr as a little-endian unsigned value.
// size must be 1, 2, 4 or 8 and the access must not cross a page boundary
// in a torn way (callers keep accesses naturally aligned).
func (m *Memory) Read(addr uint64, size int) uint64 {
	p := m.page(addr)
	off := addr % pageBytes
	if off+uint64(size) <= pageBytes {
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
		panic(fmt.Errorf("mem: bad read size %d: %w", size, ErrAccess))
	}
	// Page-crossing access: assemble byte by byte.
	var v uint64
	for i := 0; i < size; i++ {
		b := m.page(addr + uint64(i))[(addr+uint64(i))%pageBytes]
		v |= uint64(b) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	if m.onWrite != nil {
		m.onWrite(addr, size)
	}
	p := m.page(addr)
	off := addr % pageBytes
	if off+uint64(size) <= pageBytes {
		switch size {
		case 1:
			p[off] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
		default:
			panic(fmt.Errorf("mem: bad write size %d: %w", size, ErrAccess))
		}
		return
	}
	for i := 0; i < size; i++ {
		m.page(addr + uint64(i))[(addr+uint64(i))%pageBytes] = byte(v >> (8 * i))
	}
}

// ReadUint64 reads a 64-bit value.
func (m *Memory) ReadUint64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteUint64 writes a 64-bit value.
func (m *Memory) WriteUint64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// ReadFloat64 reads a float64.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.Read(addr, 8))
}

// WriteFloat64 writes a float64.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.Write(addr, 8, math.Float64bits(v))
}
