package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("read %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Fatalf("low word %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Fatalf("high word %#x", got)
	}
	m.Write(0x1002, 2, 0xBEEF)
	if got := m.Read(0x1000, 8); got != 0x11223344BEEF7788 {
		t.Fatalf("merged %#x", got)
	}
}

func TestMemoryPageCrossing(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageBytes - 3)
	m.Write(addr, 8, 0xA1B2C3D4E5F60718)
	if got := m.Read(addr, 8); got != 0xA1B2C3D4E5F60718 {
		t.Fatalf("page-crossing read %#x", got)
	}
}

func TestMemoryBytesRoundTrip(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(0x3FF0, data) // crosses several pages
	got := m.ReadBytes(0x3FF0, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
		}
	}
}

func TestMemoryFloatHelpers(t *testing.T) {
	m := NewMemory()
	m.WriteFloat64(0x2000, 3.25)
	if got := m.ReadFloat64(0x2000); got != 3.25 {
		t.Fatalf("float round trip %v", got)
	}
	m.WriteUint64(0x2008, 42)
	if m.ReadUint64(0x2008) != 42 {
		t.Fatal("uint64 round trip")
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		a := uint64(addr)
		m.Write(a, size, v)
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * uint(size))) - 1
		}
		return m.Read(a, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheInsertLookupLRU(t *testing.T) {
	c := NewCache("t", 4*64, 2, 64) // 2 sets, 2 ways
	// Addresses mapping to set 0: 0, 128, 256 (line 64B, 2 sets).
	c.Insert(0, Shared)
	c.Insert(128, Shared)
	if c.Lookup(0) != Shared || c.Lookup(128) != Shared {
		t.Fatal("inserted lines absent")
	}
	// Touch 0 so 128 is LRU, then insert 256: victim must be 128.
	c.Lookup(0)
	v := c.Insert(256, Modified)
	if !v.Valid || v.Addr != 128 {
		t.Fatalf("victim %+v, want addr 128", v)
	}
	if c.Lookup(128) != Invalid {
		t.Fatal("evicted line still present")
	}
	if c.Lookup(256) != Modified {
		t.Fatal("new line wrong state")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := NewCache("t", 2*64, 1, 64) // 2 sets, direct mapped
	c.Insert(0, Modified)
	v := c.Insert(128, Shared) // same set
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("victim %+v, want dirty addr 0", v)
	}
}

func TestCacheInvalidateAndStates(t *testing.T) {
	c := NewCache("t", 8*64, 2, 64)
	c.Insert(64, Shared)
	c.SetState(64, Modified)
	if c.Peek(64) != Modified {
		t.Fatal("SetState failed")
	}
	present, dirty := c.Invalidate(64)
	if !present || !dirty {
		t.Fatalf("invalidate returned %v %v", present, dirty)
	}
	if p, _ := c.Invalidate(64); p {
		t.Fatal("double invalidate reported present")
	}
	// SetState on absent line is a no-op.
	c.SetState(999*64, Modified)
	if c.Peek(999*64) != Invalid {
		t.Fatal("SetState resurrected a line")
	}
}

func TestCacheLineAddr(t *testing.T) {
	c := NewCache("t", 8*64, 2, 64)
	if c.LineAddr(0x12345) != 0x12340 {
		t.Fatalf("LineAddr %#x", c.LineAddr(0x12345))
	}
}

func TestCacheInsertExistingUpdatesState(t *testing.T) {
	c := NewCache("t", 8*64, 2, 64)
	c.Insert(0, Shared)
	v := c.Insert(0, Modified)
	if v.Valid {
		t.Fatal("re-insert produced a victim")
	}
	if c.Peek(0) != Modified {
		t.Fatal("state not upgraded")
	}
}

func TestConfigBankMapping(t *testing.T) {
	cfg := DefaultConfig(16)
	// Consecutive lines round-robin across banks.
	for i := 0; i < 16; i++ {
		addr := uint64(i * cfg.LineBytes)
		if got := cfg.BankOf(addr); got != i%cfg.L2Banks {
			t.Fatalf("BankOf(%#x) = %d", addr, got)
		}
	}
	// Stride LineBytes*L2Banks preserves the bank.
	stride := uint64(cfg.LineBytes * cfg.L2Banks)
	b0 := cfg.BankOf(0x5000)
	for i := 1; i < 8; i++ {
		if cfg.BankOf(0x5000+uint64(i)*stride) != b0 {
			t.Fatal("stride does not preserve bank")
		}
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.L1Size != 64<<10 || cfg.L1Assoc != 2 || cfg.L1Lat != 1 {
		t.Error("L1 config differs from Table 2")
	}
	if cfg.L2Size != 512<<10 || cfg.L2Assoc != 2 || cfg.L2Lat != 14 {
		t.Error("L2 config differs from Table 2")
	}
	if cfg.L3Size != 4096<<10 || cfg.L3Assoc != 2 || cfg.L3Lat != 38 {
		t.Error("L3 config differs from Table 2")
	}
	if cfg.MemLat != 138 {
		t.Error("memory latency differs from Table 2")
	}
	if cfg.FilterBW != 1 {
		t.Error("filter bandwidth differs from Table 2 (1 request/cycle)")
	}
	if cfg.LineBytes != 64 {
		t.Error("line size must be 64B (8 doubles)")
	}
}

// runSystem ticks a system until pred or the limit.
func runSystem(s *System, limit int, pred func() bool) bool {
	for i := 0; i < limit; i++ {
		if pred() {
			return true
		}
		s.Tick(uint64(i))
	}
	return pred()
}

func TestSystemFillRoundTrip(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	s.Mem.WriteUint64(0x4000, 777)
	l1 := s.L1D[0]
	if l1.Present(0x4000) {
		t.Fatal("cold cache reports hit")
	}
	if !l1.StartMiss(0, 0x4000, GetS, false) {
		t.Fatal("StartMiss failed")
	}
	if !runSystem(s, 1000, func() bool { return l1.Present(0x4000) }) {
		t.Fatal("fill never arrived")
	}
	// Second fill of the same line should be an L2 hit and much faster.
	s2 := NewSystem(DefaultConfig(2))
	s2.L1D[0].StartMiss(0, 0x4000, GetS, false)
	first := 0
	for i := 0; i < 1000; i++ {
		s2.Tick(uint64(i))
		if s2.L1D[0].Present(0x4000) {
			first = i
			break
		}
	}
	s2.L1D[0].localInval(0x4000)
	s2.L1D[0].StartMiss(uint64(first), 0x4000, GetS, false)
	second := 0
	for i := first; i < first+1000; i++ {
		s2.Tick(uint64(i))
		if s2.L1D[0].Present(0x4000) {
			second = i - first
			break
		}
	}
	if second >= first {
		t.Fatalf("L2 hit (%d cycles) not faster than DRAM fill (%d cycles)", second, first)
	}
}

func TestSystemGetMInvalidatesSharers(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	lost := false
	s.L1D[0].OnExtInval = func(addr uint64) { lost = true }
	s.L1D[0].StartMiss(0, 0x8000, GetS, false)
	if !runSystem(s, 1000, func() bool { return s.L1D[0].Present(0x8000) }) {
		t.Fatal("core 0 fill missing")
	}
	s.L1D[1].StartMiss(500, 0x8000, GetM, false)
	if !runSystem(s, 3000, func() bool { return s.L1D[1].WriteState(0x8000) == Modified }) {
		t.Fatal("core 1 never got M")
	}
	if s.L1D[0].Present(0x8000) {
		t.Fatal("core 0 still holds an invalidated line")
	}
	if !lost {
		t.Fatal("OnExtInval callback not fired")
	}
}

func TestSystemUpgradePath(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	s.L1D[0].StartMiss(0, 0xC000, GetS, false)
	if !runSystem(s, 1000, func() bool { return s.L1D[0].Present(0xC000) }) {
		t.Fatal("fill missing")
	}
	if st := s.L1D[0].WriteState(0xC000); st != Shared {
		t.Fatalf("state %v, want Shared", st)
	}
	s.L1D[0].StartMiss(600, 0xC000, Upgrade, false)
	if !runSystem(s, 2000, func() bool { return s.L1D[0].WriteState(0xC000) == Modified }) {
		t.Fatal("upgrade never completed")
	}
}

func TestSystemCacheInvalBroadcast(t *testing.T) {
	s := NewSystem(DefaultConfig(3))
	// Cores 1 and 2 share the line; core 0 DCBIs it.
	s.L1D[1].StartMiss(0, 0x10000, GetS, false)
	s.L1D[2].StartMiss(0, 0x10000, GetS, false)
	if !runSystem(s, 2000, func() bool {
		return s.L1D[1].Present(0x10000) && s.L1D[2].Present(0x10000)
	}) {
		t.Fatal("initial fills missing")
	}
	tok := s.IssueCacheInval(1000, 0, 0x10000, false)
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("inval never acknowledged")
	}
	if s.L1D[1].Present(0x10000) || s.L1D[2].Present(0x10000) {
		t.Fatal("DCBI broadcast did not clear sharer copies")
	}
	if tok.Err {
		t.Fatal("unexpected error ack")
	}
}

func TestSystemICacheInvalSeparateFromD(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	s.L1I[1].StartMiss(0, 0x20000, GetI, false)
	s.L1D[1].StartMiss(0, 0x20000, GetS, false)
	if !runSystem(s, 2000, func() bool {
		return s.L1I[1].Present(0x20000) && s.L1D[1].Present(0x20000)
	}) {
		t.Fatal("fills missing")
	}
	tok := s.IssueCacheInval(1000, 0, 0x20000, true) // ICBI
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("no ack")
	}
	if s.L1I[1].Present(0x20000) {
		t.Fatal("ICBI left the I-line")
	}
	if !s.L1D[1].Present(0x20000) {
		t.Fatal("ICBI must not touch D-lines")
	}
}

func TestSystemQuietAndCoreQuiet(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	if !s.Quiet() {
		t.Fatal("fresh system not quiet")
	}
	s.L1D[0].StartMiss(0, 0x4000, GetS, false)
	if s.Quiet() || s.CoreQuiet(0) {
		t.Fatal("system quiet with outstanding miss")
	}
	if !s.CoreQuiet(1) {
		t.Fatal("core 1 has nothing outstanding")
	}
	runSystem(s, 2000, func() bool { return s.Quiet() })
	if !s.Quiet() {
		t.Fatal("system never drained")
	}
}

func TestSystemMSHRLimit(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MSHRs = 2
	s := NewSystem(cfg)
	if !s.L1D[0].StartMiss(0, 0x1000, GetS, false) {
		t.Fatal("first miss rejected")
	}
	if !s.L1D[0].StartMiss(0, 0x2000, GetS, false) {
		t.Fatal("second miss rejected")
	}
	if s.L1D[0].StartMiss(0, 0x3000, GetS, false) {
		t.Fatal("third miss should exhaust MSHRs")
	}
	// Piggyback on an existing line does not need a new MSHR.
	if !s.L1D[0].StartMiss(0, 0x1008, GetS, false) {
		t.Fatal("piggyback rejected")
	}
}

func TestSystemSquashedMSHRDropsResponse(t *testing.T) {
	s := NewSystem(DefaultConfig(1))
	s.L1D[0].StartMiss(0, 0x4000, GetS, false)
	s.L1D[0].SquashMisses()
	// The response must be dropped without installing the line.
	for i := 0; i < 2000; i++ {
		s.Tick(uint64(i))
	}
	if s.L1D[0].Present(0x4000) {
		t.Fatal("squashed fill installed a line")
	}
}

func TestBusOrderingSameCore(t *testing.T) {
	// A core's invalidation must reach the bank before its later fill
	// request (the property the barrier sequences rely on).
	cfg := DefaultConfig(2)
	s := NewSystem(cfg)
	var order []TxnKind
	hookBank := s.Banks[cfg.BankOf(0x40000)]
	hookBank.SetHook(recordHook{&order})
	s.IssueCacheInval(0, 0, 0x40000, false)
	s.L1D[0].StartMiss(0, 0x40000, GetS, false)
	runSystem(s, 2000, func() bool { return len(order) >= 2 })
	if len(order) < 2 || order[0] != InvalD || order[1] != GetS {
		t.Fatalf("bank observed %v, want [InvalD GetS]", order)
	}
}

// recordHook records the kinds of transactions a bank processes.
type recordHook struct{ order *[]TxnKind }

func (r recordHook) OnInval(now uint64, addr uint64, core int) bool {
	*r.order = append(*r.order, InvalD)
	return false
}

func (r recordHook) OnFill(now uint64, t Txn) (bool, bool) {
	*r.order = append(*r.order, t.Kind)
	return false, false
}

func (r recordHook) PopReleased(now uint64) (Txn, bool, bool) { return Txn{}, false, false }

func TestL3HitFasterThanDRAM(t *testing.T) {
	s := NewSystem(DefaultConfig(1))
	// First touch goes to DRAM and installs in L3 and L2.
	s.L1D[0].StartMiss(0, 0x9000, GetS, false)
	first := -1
	for i := 0; i < 2000; i++ {
		s.Tick(uint64(i))
		if s.L1D[0].Present(0x9000) {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("first fill missing")
	}
	if s.L3Cache().Misses != 1 {
		t.Fatalf("L3 misses = %d, want 1", s.L3Cache().Misses)
	}
	// A different line in the same L3 set region still misses L3.
	s.L1D[0].StartMiss(uint64(first), 0xA000, GetS, false)
	if !runSystem(s, 2000, func() bool { return s.L1D[0].Present(0xA000) }) {
		t.Fatal("second fill missing")
	}
	if s.L3Cache().Misses != 2 {
		t.Fatalf("L3 misses = %d, want 2", s.L3Cache().Misses)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1Size = 2 * 64 // tiny direct-ish L1: 1 set x 2 ways
	cfg.L1Assoc = 2
	s := NewSystem(cfg)
	// Fill two ways with modified lines, then a third forces a dirty
	// eviction and a WB transaction.
	for i, addr := range []uint64{0x1000, 0x2000, 0x3000} {
		s.L1D[0].StartMiss(uint64(i*500), addr, GetM, false)
		if !runSystem(s, (i+1)*1000, func() bool { return s.L1D[0].Present(addr) }) {
			t.Fatalf("fill %#x missing", addr)
		}
	}
	var wbs uint64
	for _, bk := range s.Banks {
		wbs += bk.WBs
	}
	if !runSystem(s, 4000, func() bool {
		wbs = 0
		for _, bk := range s.Banks {
			wbs += bk.WBs
		}
		return wbs >= 1
	}) {
		t.Fatalf("no writeback observed after dirty eviction (wbs=%d)", wbs)
	}
}

func TestSharedDataBusSlower(t *testing.T) {
	// The same burst of fills takes longer over one shared data bus than
	// over the per-bank crossbar.
	run := func(shared bool) int {
		cfg := DefaultConfig(8)
		cfg.SharedDataBus = shared
		s := NewSystem(cfg)
		for c := 0; c < 8; c++ {
			s.L1D[c].StartMiss(0, uint64(0x4000+c*64), GetS, false)
		}
		for i := 0; i < 5000; i++ {
			done := true
			for c := 0; c < 8; c++ {
				if !s.L1D[c].Present(uint64(0x4000 + c*64)) {
					done = false
				}
			}
			if done {
				return i
			}
			s.Tick(uint64(i))
		}
		return -1
	}
	fast := run(false)
	slow := run(true)
	if fast < 0 || slow < 0 {
		t.Fatal("fills did not complete")
	}
	if slow <= fast {
		t.Fatalf("shared bus (%d cycles) not slower than crossbar (%d)", slow, fast)
	}
}

func TestGetSDowngradesOwner(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	s.L1D[0].StartMiss(0, 0xB000, GetM, false)
	if !runSystem(s, 1000, func() bool { return s.L1D[0].WriteState(0xB000) == Modified }) {
		t.Fatal("owner fill missing")
	}
	s.L1D[1].StartMiss(500, 0xB000, GetS, false)
	if !runSystem(s, 3000, func() bool { return s.L1D[1].Present(0xB000) }) {
		t.Fatal("reader fill missing")
	}
	if st := s.L1D[0].WriteState(0xB000); st != Shared {
		t.Fatalf("owner not downgraded: %v", st)
	}
}

func TestBusQuietAndStats(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	if !s.Fabric().Quiet() {
		t.Fatal("fresh bus not quiet")
	}
	s.L1D[0].StartMiss(0, 0x5000, GetS, false)
	runSystem(s, 2000, func() bool { return s.Quiet() })
	stats := map[string]uint64{}
	s.FabricStats(func(name string, v uint64) { stats[name] = v })
	if stats["bus.request_grants"] == 0 || stats["bus.response_grants"] == 0 {
		t.Fatalf("bus grants not counted: %v", stats)
	}
}
