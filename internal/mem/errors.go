package mem

import (
	"errors"
	"fmt"

	"repro/internal/interconnect"
)

// ErrConfig marks an invalid memory-system configuration. Constructors
// validate geometry up front (Config.Validate); the few remaining internal
// panics wrap this sentinel so a harness worker can recover a malformed
// experiment cell into an attributed config fault instead of dying.
var ErrConfig = errors.New("invalid memory configuration")

// ErrAccess marks a malformed functional memory access (unsupported size).
var ErrAccess = errors.New("invalid memory access")

// checkGeometry validates one cache's shape: positive line/way counts, total
// capacity divisible into ways of lines, and a power-of-two set count.
func checkGeometry(name string, totalBytes, ways, lineBytes int) error {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: line size %dB is not a positive power of two: %w", name, lineBytes, ErrConfig)
	}
	if ways <= 0 {
		return fmt.Errorf("mem: %s: associativity %d is not positive: %w", name, ways, ErrConfig)
	}
	if totalBytes <= 0 || totalBytes%(ways*lineBytes) != 0 {
		return fmt.Errorf("mem: %s: %dB not divisible into %d ways of %dB lines: %w", name, totalBytes, ways, lineBytes, ErrConfig)
	}
	sets := totalBytes / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d is not a power of two: %w", name, sets, ErrConfig)
	}
	return nil
}

// Validate checks the whole configuration and returns an error wrapping
// ErrConfig describing the first problem found. NewSystem assumes a valid
// configuration; harness code paths go through core.NewMachineChecked, which
// calls this before construction.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.Cores > MaxCores {
		return fmt.Errorf("mem: core count %d outside 1..%d: %w", c.Cores, MaxCores, ErrConfig)
	}
	if c.L2Banks <= 0 {
		return fmt.Errorf("mem: L2 bank count %d is not positive: %w", c.L2Banks, ErrConfig)
	}
	if c.L2Size%c.L2Banks != 0 {
		return fmt.Errorf("mem: L2 size %dB not divisible into %d banks: %w", c.L2Size, c.L2Banks, ErrConfig)
	}
	if c.MSHRs <= 0 || c.IMSHRs <= 0 {
		return fmt.Errorf("mem: MSHR counts (%d data, %d inst) must be positive: %w", c.MSHRs, c.IMSHRs, ErrConfig)
	}
	if c.DataBusBytesPerCycle <= 0 {
		return fmt.Errorf("mem: data bus width %dB/cycle is not positive: %w", c.DataBusBytesPerCycle, ErrConfig)
	}
	if c.FilterCap < 0 {
		return fmt.Errorf("mem: filter table capacity %d is negative: %w", c.FilterCap, ErrConfig)
	}
	if err := checkGeometry("L1", c.L1Size, c.L1Assoc, c.LineBytes); err != nil {
		return err
	}
	if err := checkGeometry("L2 bank", c.L2Size/c.L2Banks, c.L2Assoc, c.LineBytes); err != nil {
		return err
	}
	if err := checkGeometry("L3", c.L3Size, c.L3Assoc, c.LineBytes); err != nil {
		return err
	}
	return c.validateFabric()
}

// validateFabric rejects fabric-geometry mismatches — an unknown topology,
// zero-bandwidth ports, non-positive mesh link latency, or an explicit mesh
// grid too small for the core/bank count — before they can silently
// mis-route traffic.
func (c *Config) validateFabric() error {
	switch c.Fabric {
	case interconnect.KindBus, interconnect.KindCrossbar, interconnect.KindMesh,
		interconnect.KindOptical:
	default:
		return fmt.Errorf("mem: unknown fabric kind %d: %w", int(c.Fabric), ErrConfig)
	}
	if c.Fabric == interconnect.KindMesh {
		if c.LinkLat <= 0 {
			return fmt.Errorf("mem: mesh link latency %d cycles is not positive: %w", c.LinkLat, ErrConfig)
		}
		if c.MeshLinkBytesPerCycle <= 0 {
			return fmt.Errorf("mem: mesh link width %dB/cycle is not positive: %w", c.MeshLinkBytesPerCycle, ErrConfig)
		}
		if (c.MeshW != 0) != (c.MeshH != 0) {
			return fmt.Errorf("mem: mesh dimensions %dx%d: set both or neither: %w", c.MeshW, c.MeshH, ErrConfig)
		}
		if c.MeshW < 0 || c.MeshH < 0 {
			return fmt.Errorf("mem: mesh dimensions %dx%d are negative: %w", c.MeshW, c.MeshH, ErrConfig)
		}
	}
	if err := c.fabricGeometry().Validate(c.Fabric); err != nil {
		return fmt.Errorf("mem: %v: %w", err, ErrConfig)
	}
	return nil
}
