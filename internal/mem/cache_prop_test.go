package mem

import (
	"testing"

	"repro/internal/sim"
)

// refCache is a trivial reference model of a set-associative LRU cache.
type refCache struct {
	sets      int
	ways      int
	lineBytes int
	lines     map[uint64]LineState
	order     map[uint64]uint64 // LRU stamp
	clock     uint64
}

func newRefCache(total, ways, lineBytes int) *refCache {
	return &refCache{
		sets:      total / (ways * lineBytes),
		ways:      ways,
		lineBytes: lineBytes,
		lines:     make(map[uint64]LineState),
		order:     make(map[uint64]uint64),
	}
}

func (r *refCache) line(addr uint64) uint64 { return addr &^ uint64(r.lineBytes-1) }
func (r *refCache) set(addr uint64) uint64 {
	return (r.line(addr) / uint64(r.lineBytes)) % uint64(r.sets)
}

func (r *refCache) lookup(addr uint64) LineState {
	la := r.line(addr)
	st, ok := r.lines[la]
	if !ok {
		return Invalid
	}
	r.clock++
	r.order[la] = r.clock
	return st
}

func (r *refCache) insert(addr uint64, st LineState) (victim uint64, hadVictim bool) {
	la := r.line(addr)
	r.clock++
	if _, ok := r.lines[la]; ok {
		r.lines[la] = st
		r.order[la] = r.clock
		return 0, false
	}
	// Count occupancy of the set.
	var members []uint64
	for a := range r.lines {
		if r.set(a) == r.set(la) {
			members = append(members, a)
		}
	}
	if len(members) >= r.ways {
		// Evict LRU member.
		lru := members[0]
		for _, a := range members[1:] {
			if r.order[a] < r.order[lru] {
				lru = a
			}
		}
		delete(r.lines, lru)
		delete(r.order, lru)
		victim, hadVictim = lru, true
	}
	r.lines[la] = st
	r.order[la] = r.clock
	return victim, hadVictim
}

func (r *refCache) invalidate(addr uint64) bool {
	la := r.line(addr)
	_, ok := r.lines[la]
	delete(r.lines, la)
	delete(r.order, la)
	return ok
}

// TestCachePropertyVsReference drives the real tag array and the reference
// model with an identical random operation stream and requires identical
// observable behaviour.
func TestCachePropertyVsReference(t *testing.T) {
	rng := sim.NewRand(12345)
	c := NewCache("prop", 8*2*64, 2, 64) // 8 sets, 2 ways
	r := newRefCache(8*2*64, 2, 64)

	addrs := make([]uint64, 40)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(32)) * 64 // 32 lines over 8 sets
	}
	for step := 0; step < 20000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		switch rng.Intn(4) {
		case 0: // lookup
			if got, want := c.Lookup(a), r.lookup(a); got != want {
				t.Fatalf("step %d: Lookup(%#x) = %v, want %v", step, a, got, want)
			}
		case 1: // insert
			st := Shared
			if rng.Intn(2) == 1 {
				st = Modified
			}
			v := c.Insert(a, st)
			victim, had := r.insert(a, st)
			if v.Valid != had {
				t.Fatalf("step %d: Insert(%#x) victim presence mismatch (%v vs %v)", step, a, v.Valid, had)
			}
			if had && v.Addr != victim {
				t.Fatalf("step %d: Insert(%#x) evicted %#x, reference evicted %#x", step, a, v.Addr, victim)
			}
		case 2: // invalidate
			p, _ := c.Invalidate(a)
			if want := r.invalidate(a); p != want {
				t.Fatalf("step %d: Invalidate(%#x) = %v, want %v", step, a, p, want)
			}
		case 3: // peek (no LRU side effect in either model)
			got := c.Peek(a)
			want, ok := r.lines[r.line(a)]
			if !ok {
				want = Invalid
			}
			if got != want {
				t.Fatalf("step %d: Peek(%#x) = %v, want %v", step, a, got, want)
			}
		}
	}
}
