package mem

// l3req is a miss forwarded from an L2 bank.
type l3req struct {
	bank  int
	addr  uint64
	ready uint64
}

// L3 models the shared third-level cache and the DRAM behind it. Both are
// simple latency/queue models: one request enters each per cycle, hits
// return after L3Lat, misses after L3Lat+MemLat (installing the line in L3
// on the way back).
type L3 struct {
	sys   *System
	cache *Cache
	inQ   []l3req
	dramQ []l3req

	Hits, Misses uint64
}

func newL3(sys *System) *L3 {
	cfg := sys.Cfg
	return &L3{
		sys:   sys,
		cache: NewCache("L3", cfg.L3Size, cfg.L3Assoc, cfg.LineBytes),
	}
}

func (l *L3) push(bank int, addr uint64, ready uint64) {
	l.inQ = append(l.inQ, l3req{bank: bank, addr: addr, ready: ready})
}

// Tick processes one lookup and one DRAM completion per cycle.
func (l *L3) Tick(now uint64) {
	for i := 0; i < len(l.inQ); i++ {
		if l.inQ[i].ready > now {
			continue
		}
		r := l.inQ[i]
		l.inQ = append(l.inQ[:i], l.inQ[i+1:]...)
		if l.cache.Lookup(r.addr) != Invalid {
			l.Hits++
			l.refill(r, now+uint64(l.sys.Cfg.L3Lat))
		} else {
			l.Misses++
			r.ready = now + uint64(l.sys.Cfg.L3Lat+l.sys.Cfg.MemLat)
			l.dramQ = append(l.dramQ, r)
		}
		break
	}
	for i := 0; i < len(l.dramQ); i++ {
		if l.dramQ[i].ready > now {
			continue
		}
		r := l.dramQ[i]
		l.dramQ = append(l.dramQ[:i], l.dramQ[i+1:]...)
		l.cache.Insert(r.addr, Shared)
		l.refill(r, now)
		break
	}
}

func (l *L3) refill(r l3req, at uint64) {
	l.sys.Banks[r.bank].pushRefill(Txn{Addr: r.addr}, at)
}

// nextEvent returns the earliest ready time of any queued lookup or DRAM
// completion; ok=false when both queues are empty.
func (l *L3) nextEvent() (event uint64, ok bool) {
	consider := func(t uint64) {
		if !ok || t < event {
			event, ok = t, true
		}
	}
	for i := range l.inQ {
		consider(l.inQ[i].ready)
	}
	for i := range l.dramQ {
		consider(l.dramQ[i].ready)
	}
	return event, ok
}

// Quiet reports whether no request is in flight at this level.
func (l *L3) Quiet() bool { return len(l.inQ) == 0 && len(l.dramQ) == 0 }
