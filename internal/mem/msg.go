// Package mem models the shared memory system of the simulated CMP: private
// per-core L1 instruction and data caches, a shared banked L2 with a
// full-map directory (the coherence point), a shared L3, DRAM, and the
// shared split-transaction bus connecting cores to the L2 banks.
//
// # Timing-first design
//
// The caches are tag/state arrays only. All functional data lives in the
// backing Memory; a store updates it at the moment the store performs in an
// M-state L1 line, and a load reads it when its access completes. Because a
// remote core can only gain write permission by first invalidating the
// previous owner (which clears LL/SC locks and changes tag state through the
// directory), the functional outcome always matches what a real MSI machine
// would produce, while the timing model charges every transaction, miss,
// intervention, and bus cycle.
//
// # The barrier filter hook
//
// Each L2 bank exposes a BankHook. The barrier filter (package filter)
// implements it: invalidation transactions reaching a bank are shown to the
// hook (arrival/exit signals), and fill requests can be parked — withheld
// from service — until the filter releases them. A parked fill keeps the
// requesting core's MSHR occupied, which is precisely the starvation
// mechanism of the paper.
package mem

import "fmt"

// TxnKind enumerates bus transaction types.
type TxnKind int

const (
	// Requests (core -> bank).
	GetS    TxnKind = iota // data read miss: want Shared
	GetI                   // instruction fetch miss
	GetM                   // data write miss: want Modified
	Upgrade                // have Shared, want Modified (no data reply needed)
	InvalD                 // DCBI broadcast: remove line from all L1Ds
	InvalI                 // ICBI broadcast: remove line from all L1Is
	WB                     // writeback of an evicted dirty line

	// Responses (bank -> core).
	Fill     // data/instruction fill (answers GetS/GetI/GetM)
	UpgAck   // answers Upgrade
	InvalAck // answers InvalD/InvalI
)

func (k TxnKind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetI:
		return "GetI"
	case GetM:
		return "GetM"
	case Upgrade:
		return "Upgrade"
	case InvalD:
		return "InvalD"
	case InvalI:
		return "InvalI"
	case WB:
		return "WB"
	case Fill:
		return "Fill"
	case UpgAck:
		return "UpgAck"
	case InvalAck:
		return "InvalAck"
	}
	return fmt.Sprintf("TxnKind(%d)", int(k))
}

// IsFillRequest reports whether the transaction asks for a cache-line fill
// (the requests a barrier filter can starve).
func (k TxnKind) IsFillRequest() bool { return k == GetS || k == GetI || k == GetM }

// Txn is one bus transaction. Addr is always line-aligned.
type Txn struct {
	Kind TxnKind
	Addr uint64
	Core int
	ID   uint64 // core-local identifier for matching responses

	// Request-side flags.
	ReqKind  TxnKind // on responses: the request kind being answered
	Dirty    bool    // InvalD/WB: line was dirty (data already in Memory)
	Prefetch bool    // fill request issued by a hardware prefetcher

	// Response-side flags.
	Exclusive bool // Fill grants M (answers GetM)
	Err       bool // filter signalled an error (timeout / misuse)
}

func (t Txn) String() string {
	return fmt.Sprintf("%s@%#x core%d id%d", t.Kind, t.Addr, t.Core, t.ID)
}
