package mem

// The bus connects the cores' L1 caches to the L2 banks. It is a
// split-transaction bus with two independently arbitrated halves:
//
//   - the request (address) bus: one grant per cycle, round-robin across
//     cores; writebacks and dirty invalidations carry their line on the
//     request path and occupy it for the full data-transfer time. This is
//     the shared resource whose saturation past 16 cores the paper reports;
//   - the response (data) path: by default a Niagara-style crossbar with an
//     independent channel per L2 bank (Config.SharedDataBus collapses it to
//     one shared bus for the ablation). A line fill occupies its channel
//     for LineBytes/DataBusBytesPerCycle cycles, acks for one.
//
// Per-core request queues are FIFO, which gives the same-address ordering
// the barrier sequences rely on: an ICBI/DCBI transaction always reaches the
// bank before the fill request the same core issues afterwards.
type Bus struct {
	cfg *Config

	reqQ    [][]timedTxn // per core
	reqNext int
	reqFree uint64 // first cycle the request bus is free

	respQ    [][]timedTxn // per bank
	respNext int
	respFree []uint64 // per bank channel (single shared entry when SharedDataBus)

	deliverReq  func(bank int, t Txn, at uint64)
	deliverResp func(t Txn, at uint64)

	// chaos mirrors System.chaos (set through SetChaosHook); nil = off.
	chaos ChaosHook

	// statistics
	ReqGrants    uint64
	ReqBusyCyc   uint64
	RespGrants   uint64
	RespBusyCyc  uint64
	MaxReqQueue  int
	MaxRespQueue int
}

type timedTxn struct {
	txn   Txn
	ready uint64 // earliest cycle the entry may be granted
}

// NewBus wires a bus for cfg.Cores cores and cfg.L2Banks banks. deliverReq
// and deliverResp are invoked when a transfer completes.
func NewBus(cfg *Config, deliverReq func(bank int, t Txn, at uint64), deliverResp func(t Txn, at uint64)) *Bus {
	nchan := cfg.L2Banks
	if cfg.SharedDataBus {
		nchan = 1
	}
	return &Bus{
		cfg:         cfg,
		reqQ:        make([][]timedTxn, cfg.Cores),
		respQ:       make([][]timedTxn, cfg.L2Banks),
		respFree:    make([]uint64, nchan),
		deliverReq:  deliverReq,
		deliverResp: deliverResp,
	}
}

// PushRequest enqueues a request transaction from a core, available for
// arbitration at cycle ready. An attached chaos hook may delay the entry
// (its ready time moves out, so nextEvent stays exact) or reorder it ahead
// of the youngest entry the same core already has queued.
func (b *Bus) PushRequest(t Txn, ready uint64) {
	q := b.reqQ[t.Core]
	if b.chaos != nil {
		delay, reorder := b.chaos.OnRequest(t, ready)
		ready += delay
		if reorder && len(q) > 0 {
			last := q[len(q)-1]
			b.reqQ[t.Core] = append(q[:len(q)-1], timedTxn{t, ready}, last)
			if n := len(b.reqQ[t.Core]); n > b.MaxReqQueue {
				b.MaxReqQueue = n
			}
			return
		}
	}
	b.reqQ[t.Core] = append(q, timedTxn{t, ready})
	if n := len(b.reqQ[t.Core]); n > b.MaxReqQueue {
		b.MaxReqQueue = n
	}
}

// PushResponse enqueues a response from a bank, available at cycle ready.
func (b *Bus) PushResponse(bank int, t Txn, ready uint64) {
	if b.chaos != nil {
		ready += b.chaos.OnResponse(bank, t, ready)
	}
	b.respQ[bank] = append(b.respQ[bank], timedTxn{t, ready})
	if n := len(b.respQ[bank]); n > b.MaxRespQueue {
		b.MaxRespQueue = n
	}
}

// reqOccupancy returns the number of cycles a request occupies the address
// bus.
func (b *Bus) reqOccupancy(t Txn) uint64 {
	if t.Kind == WB || (t.Kind == InvalD && t.Dirty) {
		return uint64(b.cfg.LineBytes / b.cfg.DataBusBytesPerCycle)
	}
	return 1
}

// respOccupancy returns the number of cycles a response occupies the data
// bus.
func (b *Bus) respOccupancy(t Txn) uint64 {
	if t.Kind == Fill && !t.Err {
		return uint64(b.cfg.LineBytes / b.cfg.DataBusBytesPerCycle)
	}
	return 1
}

// Tick arbitrates both bus halves for one cycle.
func (b *Bus) Tick(now uint64) {
	b.tickReq(now)
	b.tickResp(now)
}

func (b *Bus) tickReq(now uint64) {
	if now < b.reqFree {
		b.ReqBusyCyc++
		return
	}
	n := len(b.reqQ)
	for i := 0; i < n; i++ {
		c := (b.reqNext + i) % n
		q := b.reqQ[c]
		if len(q) == 0 || q[0].ready > now {
			continue
		}
		t := q[0].txn
		b.reqQ[c] = q[1:]
		b.reqNext = (c + 1) % n
		occ := b.reqOccupancy(t)
		b.reqFree = now + occ
		b.ReqGrants++
		bank := b.cfg.BankOf(t.Addr)
		b.deliverReq(bank, t, now+occ)
		return
	}
}

func (b *Bus) tickResp(now uint64) {
	if b.cfg.SharedDataBus {
		// One shared data bus: a single grant per transfer time.
		if now < b.respFree[0] {
			b.RespBusyCyc++
			return
		}
		n := len(b.respQ)
		for i := 0; i < n; i++ {
			k := (b.respNext + i) % n
			q := b.respQ[k]
			if len(q) == 0 || q[0].ready > now {
				continue
			}
			t := q[0].txn
			b.respQ[k] = q[1:]
			b.respNext = (k + 1) % n
			occ := b.respOccupancy(t)
			b.respFree[0] = now + occ
			b.RespGrants++
			b.deliverResp(t, now+occ)
			return
		}
		return
	}
	// Crossbar: each bank's channel grants independently.
	for k := range b.respQ {
		if now < b.respFree[k] {
			b.RespBusyCyc++
			continue
		}
		q := b.respQ[k]
		if len(q) == 0 || q[0].ready > now {
			continue
		}
		t := q[0].txn
		b.respQ[k] = q[1:]
		occ := b.respOccupancy(t)
		b.respFree[k] = now + occ
		b.RespGrants++
		b.deliverResp(t, now+occ)
	}
}

// nextEvent returns the earliest cycle at which either bus half could grant
// a transfer: the earliest queued entry's ready time, pushed out to when its
// half (or channel) is free. ok=false when both halves are empty. Busy-cycle
// accounting on empty halves is not an event; skipIdle compensates for it.
func (b *Bus) nextEvent() (event uint64, ok bool) {
	consider := func(t uint64) {
		if !ok || t < event {
			event, ok = t, true
		}
	}
	reqReady, reqAny := uint64(0), false
	for _, q := range b.reqQ {
		if len(q) > 0 && (!reqAny || q[0].ready < reqReady) {
			reqReady, reqAny = q[0].ready, true
		}
	}
	if reqAny {
		consider(max(reqReady, b.reqFree))
	}
	if b.cfg.SharedDataBus {
		respReady, respAny := uint64(0), false
		for _, q := range b.respQ {
			if len(q) > 0 && (!respAny || q[0].ready < respReady) {
				respReady, respAny = q[0].ready, true
			}
		}
		if respAny {
			consider(max(respReady, b.respFree[0]))
		}
	} else {
		for k, q := range b.respQ {
			if len(q) > 0 {
				consider(max(q[0].ready, b.respFree[k]))
			}
		}
	}
	return event, ok
}

// skipIdle credits the per-cycle busy counters that n skipped Ticks starting
// at cycle now would have bumped: each half (or crossbar channel) counts one
// busy cycle per skipped cycle it is still occupied by an earlier grant.
func (b *Bus) skipIdle(now, n uint64) {
	if b.reqFree > now {
		b.ReqBusyCyc += min(n, b.reqFree-now)
	}
	for k := range b.respFree {
		if b.respFree[k] > now {
			b.RespBusyCyc += min(n, b.respFree[k]-now)
		}
	}
}

// Quiet reports whether no transaction is queued on either half.
func (b *Bus) Quiet() bool {
	for _, q := range b.reqQ {
		if len(q) > 0 {
			return false
		}
	}
	for _, q := range b.respQ {
		if len(q) > 0 {
			return false
		}
	}
	return true
}
