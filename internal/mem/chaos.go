package mem

// ChaosHook is the deterministic fault-injection seam of the memory system.
// A nil hook (the default) disables injection with zero overhead; when one
// is attached via SetChaosHook, the hierarchy consults it at every point a
// real machine could misbehave:
//
//   - OnRequest, at the moment a request transaction is injected into the
//     fabric's request path (delay and adjacent reordering);
//   - OnResponse, at the moment a response is enqueued on the data path
//     (late fills and late acks);
//   - OnInvalAckDrop, when a bank is about to acknowledge an ICBI/DCBI
//     (a dropped ack: the invalidation was applied but the issuing core is
//     never told);
//   - Tick/NextEvent, for spontaneous injections the hook schedules itself
//     (spurious fill responses, filter-table misuse transactions).
//
// Two rules keep injection compatible with the quiescent-core bulk
// fast-forward (DESIGN.md §6): delays must be applied by adjusting an
// entry's ready time at enqueue, so the existing next-event queries remain
// exact; and Tick must act (and consume randomness) only at cycles the hook
// previously announced through NextEvent. Under those rules a chaos run is
// bit-identical with the fast path on and off.
type ChaosHook interface {
	// OnRequest may delay a request (extra cycles added to its bus-ready
	// time) and/or reorder it ahead of the youngest entry already queued
	// by the same core, breaking the FIFO same-address ordering the
	// barrier sequences rely on.
	OnRequest(t Txn, ready uint64) (delay uint64, reorder bool)

	// OnResponse may delay a response (fill, upgrade ack, or inval ack)
	// on the data path.
	OnResponse(bank int, t Txn, ready uint64) (delay uint64)

	// OnInvalAckDrop reports whether the bank should silently drop the
	// acknowledgement for an applied invalidation.
	OnInvalAckDrop(now uint64, t Txn) (drop bool)

	// Tick runs once per memory-system cycle and may inject synthetic
	// transactions via InjectResponse/InjectRequest. It must only act at
	// cycles announced by NextEvent.
	Tick(now uint64)

	// NextEvent returns the next cycle at which Tick will act
	// spontaneously (ok=false: never, absent new traffic).
	NextEvent(now uint64) (uint64, bool)
}

// SetChaosHook attaches (or, with nil, detaches) a fault injector.
func (s *System) SetChaosHook(h ChaosHook) {
	s.chaos = h
}

// InjectResponse delivers a synthetic response transaction to its core at
// cycle at, as if it had crossed the data path. Responses whose ID matches
// no outstanding MSHR or invalidation token are dropped by the receivers,
// which is exactly the robustness property spurious-fill injection probes.
func (s *System) InjectResponse(t Txn, at uint64) {
	s.deliverResp(t.Core, t, at)
}

// InjectRequest places a synthetic request transaction on the fabric
// (subject to normal arbitration, and to the chaos hook's own OnRequest).
func (s *System) InjectRequest(t Txn, at uint64) {
	s.pushRequest(t, at)
}
