package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// Sharers is a variable-width bitset of core indices, one bit per core.
// The directory used to pack sharer sets into a single uint64, which capped
// the machine at 64 cores; Sharers lifts that limit (Config.Validate now
// allows up to MaxCores). A nil Sharers is the empty set, so idle directory
// entries cost no words; Set grows the word slice lazily.
type Sharers []uint64

// MaxCores bounds Config.Cores. The directory no longer imposes a width
// limit; this is a sanity bound on queue/port array allocations.
const MaxCores = 1024

// Has reports whether core c is in the set.
func (s Sharers) Has(c int) bool {
	w := c >> 6
	return w < len(s) && s[w]&(1<<uint(c&63)) != 0
}

// Set adds core c, growing the set as needed.
func (s *Sharers) Set(c int) {
	w := c >> 6
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << uint(c&63)
}

// Clear removes core c.
func (s Sharers) Clear(c int) {
	w := c >> 6
	if w < len(s) {
		s[w] &^= 1 << uint(c&63)
	}
}

// Reset empties the set in place, keeping its words allocated.
func (s Sharers) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Any reports whether the set is non-empty.
func (s Sharers) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of cores in the set.
func (s Sharers) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Only reports whether the set is exactly {c}.
func (s Sharers) Only(c int) bool {
	return s.Count() == 1 && s.Has(c)
}

// Clone returns an independent copy (read-only probes hand these out so
// observers cannot alias live directory state).
func (s Sharers) Clone() Sharers {
	if len(s) == 0 {
		return nil
	}
	c := make(Sharers, len(s))
	copy(c, s)
	return c
}

// String renders the set as hex words, most-significant first, matching the
// old single-word %#x dumps for machines of up to 64 cores.
func (s Sharers) String() string {
	last := len(s) - 1
	for last > 0 && s[last] == 0 {
		last--
	}
	if last <= 0 {
		var w uint64
		if len(s) > 0 {
			w = s[0]
		}
		return fmt.Sprintf("%#x", w)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%#x", s[last])
	for i := last - 1; i >= 0; i-- {
		fmt.Fprintf(&b, ":%016x", s[i])
	}
	return b.String()
}
