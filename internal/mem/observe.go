package mem

// EventObserver receives passive notifications of memory-system events: a
// response delivered to a core (fill, upgrade ack, invalidation ack), an
// invalidation processed at a bank, or a parked fill released by a filter
// hook. The sanitizer uses it for event-triggered invariant checks.
//
// Observers must be strictly read-only. The observer is deliberately never
// consulted by NextEvent, so one that mutated timing state would desync the
// quiescent-core fast path from the cycle-by-cycle path.
type EventObserver interface {
	OnMemEvent(now uint64, t Txn)
}

// SetObserver attaches the passive event observer (nil detaches).
func (s *System) SetObserver(o EventObserver) { s.obs = o }

func (s *System) observe(now uint64, t Txn) {
	if s.obs != nil {
		s.obs.OnMemEvent(now, t)
	}
}

// OldestInvalToken returns a copy of the core's longest-outstanding
// invalidation token. Ties and iteration order are resolved by (Born, Addr)
// so the watchdog's report is deterministic.
func (s *System) OldestInvalToken(core int) (tok InvalToken, ok bool) {
	for _, t := range s.invalTokens[core] {
		if !ok || t.Born < tok.Born || (t.Born == tok.Born && t.Addr < tok.Addr) {
			tok, ok = *t, true
		}
	}
	return tok, ok
}

// InvalTokenCount returns the number of outstanding invalidation tokens for
// one core.
func (s *System) InvalTokenCount(core int) int { return len(s.invalTokens[core]) }
