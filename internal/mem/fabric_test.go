package mem

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/interconnect"
)

// TestValidateFabricGeometry: every fabric-geometry mismatch must be
// rejected with a wrapped ErrConfig instead of silently mis-routing.
func TestValidateFabricGeometry(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
		want string // substring of the error; "" = valid
	}{
		{"default-bus", func(c *Config) {}, ""},
		{"bus-ignores-zero-portbw", func(c *Config) { c.PortBW = 0 }, ""},
		{"xbar-default", func(c *Config) { c.Fabric = interconnect.KindCrossbar }, ""},
		{"xbar-zero-portbw", func(c *Config) {
			c.Fabric = interconnect.KindCrossbar
			c.PortBW = 0
		}, "zero or negative"},
		{"mesh-default", func(c *Config) { c.Fabric = interconnect.KindMesh }, ""},
		{"mesh-explicit-ok", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.MeshW, c.MeshH = 4, 2
		}, ""},
		{"mesh-too-small", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.MeshW, c.MeshH = 2, 2 // 4 nodes < 8 cores
		}, "fewer than"},
		{"mesh-half-specified", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.MeshW = 4
		}, "set both or neither"},
		{"mesh-negative-dims", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.MeshW, c.MeshH = -4, -2
		}, "negative"},
		{"mesh-zero-linklat", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.LinkLat = 0
		}, "not positive"},
		{"mesh-zero-portbw", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.PortBW = -3
		}, "zero or negative"},
		{"mesh-zero-link-width", func(c *Config) {
			c.Fabric = interconnect.KindMesh
			c.MeshLinkBytesPerCycle = 0
		}, "link width"},
		{"bus-ignores-zero-link-width", func(c *Config) {
			c.MeshLinkBytesPerCycle = 0
		}, ""},
		{"unknown-fabric", func(c *Config) { c.Fabric = interconnect.Kind(42) }, "unknown fabric"},
		{"cores-over-cap", func(c *Config) { c.Cores = MaxCores + 1 }, "outside 1.."},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(8)
		tc.mod(&cfg)
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: mismatch accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v does not wrap ErrConfig", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestMeshDimsAuto: the derived grid is near-square and covers the ports.
func TestMeshDimsAuto(t *testing.T) {
	cases := []struct{ cores, banks, w, h int }{
		{4, 4, 2, 2},
		{8, 4, 3, 3},
		{16, 4, 4, 4},
		{64, 4, 8, 8},
		{2, 8, 3, 3},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(tc.cores)
		cfg.L2Banks = tc.banks
		w, h := cfg.MeshDims()
		if w != tc.w || h != tc.h {
			t.Errorf("%d cores x %d banks: grid %dx%d, want %dx%d", tc.cores, tc.banks, w, h, tc.w, tc.h)
		}
	}
	cfg := DefaultConfig(8)
	cfg.MeshW, cfg.MeshH = 5, 7
	if w, h := cfg.MeshDims(); w != 5 || h != 7 {
		t.Errorf("explicit dims not honoured: got %dx%d", w, h)
	}
}

// fabricConfigs returns a small config per fabric kind for cross-topology
// smoke tests.
func fabricConfigs(cores int) map[string]Config {
	out := map[string]Config{}
	for _, k := range interconnect.Kinds {
		cfg := DefaultConfig(cores)
		cfg.Fabric = k
		out[k.String()] = cfg
	}
	return out
}

// TestFillOnEveryFabric: the functional protocol (fill, upgrade, inval,
// writeback paths) completes on every topology.
func TestFillOnEveryFabric(t *testing.T) {
	for name, cfg := range fabricConfigs(8) {
		s := NewSystem(cfg)
		if got := s.FabricName(); got != name {
			t.Fatalf("FabricName = %q, want %q", got, name)
		}
		now := uint64(0)
		run := func(limit uint64, pred func() bool) bool {
			for end := now + limit; now < end; now++ {
				if pred() {
					return true
				}
				s.Tick(now)
			}
			return pred()
		}
		for c := 0; c < 8; c++ {
			if !s.L1D[c].StartMiss(now, 0x9000, GetS, false) {
				t.Fatalf("%s: StartMiss core %d failed", name, c)
			}
		}
		if !run(5000, func() bool {
			for c := 0; c < 8; c++ {
				if !s.L1D[c].Present(0x9000) {
					return false
				}
			}
			return true
		}) {
			t.Fatalf("%s: shared fills never completed", name)
		}
		// Exclusive steal across the fabric.
		if !s.L1D[3].StartMiss(now, 0x9000, GetM, false) {
			t.Fatalf("%s: GetM failed", name)
		}
		if !run(20000, func() bool { return s.L1D[3].WriteState(0x9000) == Modified }) {
			t.Fatalf("%s: GetM never completed", name)
		}
		// Invalidate and drain fully.
		tok := s.IssueCacheInval(now, 0, 0x9000, false)
		if !run(20000, func() bool { return tok.Done && s.Quiet() }) {
			t.Fatalf("%s: inval never drained", name)
		}
	}
}

// TestWideMachineBeyond64Cores: the directory's variable-width sharer sets
// lift the old 64-core cap; a 96-core system validates, fills a line into
// every L1D, and records every sharer.
func TestWideMachineBeyond64Cores(t *testing.T) {
	const cores = 96
	cfg := DefaultConfig(cores)
	cfg.Fabric = interconnect.KindCrossbar
	if err := cfg.Validate(); err != nil {
		t.Fatalf("96-core config rejected: %v", err)
	}
	s := NewSystem(cfg)
	const addr = 0x40000
	now := uint64(0)
	run := func(limit uint64, pred func() bool) bool {
		for end := now + limit; now < end; now++ {
			if pred() {
				return true
			}
			s.Tick(now)
		}
		return pred()
	}
	for c := 0; c < cores; c++ {
		if !s.L1D[c].StartMiss(uint64(c), addr, GetS, false) {
			t.Fatalf("StartMiss core %d failed", c)
		}
	}
	if !run(100000, func() bool { return s.Quiet() }) {
		t.Fatal("wide fill storm never drained")
	}
	e, ok := s.Banks[s.Cfg.BankOf(addr)].DirLookup(addr)
	if !ok {
		t.Fatal("no directory entry")
	}
	if e.DSharers.Count() != cores {
		t.Fatalf("directory covers %d of %d sharers: %s", e.DSharers.Count(), cores, e.DSharers)
	}
	if !e.DSharers.Has(65) || !e.DSharers.Has(95) {
		t.Fatalf("high-core sharer bits missing: %s", e.DSharers)
	}
	// A GetM from a high-numbered core must invalidate all 96 copies.
	if !s.L1D[95].StartMiss(now, addr, GetM, false) {
		t.Fatal("GetM failed")
	}
	if !run(100000, func() bool { return s.L1D[95].WriteState(addr) == Modified }) {
		t.Fatal("GetM never completed")
	}
	for c := 0; c < 95; c++ {
		if s.L1D[c].Present(addr) {
			t.Fatalf("core %d still holds the line after core 95's GetM", c)
		}
	}
	if e, _ := s.Banks[s.Cfg.BankOf(addr)].DirLookup(addr); !e.DSharers.Only(95) || e.Owner != 95 {
		t.Fatalf("directory after wide GetM: owner=%d sharers=%s", e.Owner, e.DSharers)
	}
}
