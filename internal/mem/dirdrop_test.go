package mem

import "testing"

// fillShared brings addr into core's L1D in Shared state.
func fillShared(t *testing.T, s *System, core int, addr uint64) {
	t.Helper()
	if !s.L1D[core].StartMiss(0, addr, GetS, false) {
		t.Fatalf("core %d: StartMiss(%#x) failed", core, addr)
	}
	if !runSystem(s, 2000, func() bool { return s.L1D[core].Present(addr) }) {
		t.Fatalf("core %d: fill of %#x never arrived", core, addr)
	}
}

func dirOf(s *System, addr uint64) (DirEntry, bool) {
	return s.Banks[s.Cfg.BankOf(addr)].DirLookup(s.Cfg.LineAddr(addr))
}

func TestDirDropSharerLastSharer(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x4000
	fillShared(t, s, 0, addr)
	e, ok := dirOf(s, addr)
	if !ok || !e.DSharers.Only(0) {
		t.Fatalf("directory after fill: ok=%v dSharers=%s, want bit 0", ok, e.DSharers)
	}
	// Silent clean eviction of the only sharer: the bit clears, and the
	// line simply has no cached copies left.
	s.L1D[0].localInval(addr)
	s.dirDropSharer(addr, 0, false)
	if e, _ := dirOf(s, addr); e.DSharers.Any() {
		t.Fatalf("dSharers=%s after dropping the last sharer, want 0", e.DSharers)
	}
	// The line is still fetchable afterwards.
	fillShared(t, s, 1, addr)
	if e, _ := dirOf(s, addr); !e.DSharers.Only(1) {
		t.Fatalf("dSharers=%s after refetch by core 1, want bit 1", e.DSharers)
	}
}

func TestDirDropSharerUnknownLine(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	// A drop for a line the directory has never seen must be a no-op, not
	// a panic (silent evictions can race an L2 replacement that already
	// discarded the entry).
	s.dirDropSharer(0x123440, 1, false)
	s.dirDropSharer(0x123440, 1, true)
	if _, ok := dirOf(s, 0x123440); ok {
		t.Fatal("drop on an unknown line materialized a directory entry")
	}
}

func TestDirDropSharerClearsOwner(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x8000
	if !s.L1D[0].StartMiss(0, addr, GetM, false) {
		t.Fatal("StartMiss GetM failed")
	}
	if !runSystem(s, 2000, func() bool { return s.L1D[0].WriteState(addr) == Modified }) {
		t.Fatal("core 0 never got M")
	}
	if e, _ := dirOf(s, addr); e.Owner != 0 {
		t.Fatalf("owner=%d after GetM, want 0", e.Owner)
	}
	s.L1D[0].localInval(addr)
	s.dirDropSharer(addr, 0, false)
	e, _ := dirOf(s, addr)
	if e.Owner != -1 || e.DSharers.Any() {
		t.Fatalf("owner=%d dSharers=%s after dropping the owner, want -1/0", e.Owner, e.DSharers)
	}
}

func TestDirDropSharerICacheOnlyTouchesISharers(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0xC000
	if !s.L1I[0].StartMiss(0, addr, GetI, false) {
		t.Fatal("StartMiss GetI failed")
	}
	fillShared(t, s, 0, addr)
	if !runSystem(s, 2000, func() bool { return s.L1I[0].Present(addr) }) {
		t.Fatal("I-fill never arrived")
	}
	e, _ := dirOf(s, addr)
	if !e.ISharers.Only(0) || !e.DSharers.Only(0) {
		t.Fatalf("iSharers=%s dSharers=%s after dual fill, want 1/1", e.ISharers, e.DSharers)
	}
	// An I-side drop must leave the D bit, and vice versa.
	s.dirDropSharer(addr, 0, true)
	if e, _ := dirOf(s, addr); e.ISharers.Any() || !e.DSharers.Only(0) {
		t.Fatalf("iSharers=%s dSharers=%s after I-drop, want 0/1", e.ISharers, e.DSharers)
	}
	s.dirDropSharer(addr, 0, false)
	if e, _ := dirOf(s, addr); e.DSharers.Any() {
		t.Fatalf("dSharers=%s after D-drop, want 0", e.DSharers)
	}
}

func TestDirDropSharerNonSharerIsNoOp(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x10000
	fillShared(t, s, 0, addr)
	// Dropping a core that never held the line must not disturb the bit of
	// the one that does.
	s.dirDropSharer(addr, 1, false)
	if e, _ := dirOf(s, addr); !e.DSharers.Only(0) {
		t.Fatalf("dSharers=%s after dropping a non-sharer, want bit 0 intact", e.DSharers)
	}
}

func TestIssueCacheInvalUnsharedLine(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	// DCBI of a line nobody caches: nothing to invalidate, but the token
	// must still be acknowledged cleanly (software relies on DCBI being
	// unconditional).
	tok := s.IssueCacheInval(0, 0, 0x14000, false)
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("inval of an unshared line never acknowledged")
	}
	if tok.Err {
		t.Fatal("unexpected error ack for an unshared line")
	}
}

func TestIssueCacheInvalIssuerIsOnlySharer(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x18000
	fillShared(t, s, 0, addr)
	tok := s.IssueCacheInval(100, 0, addr, false)
	// The issuer's own copy goes synchronously.
	if s.L1D[0].Present(addr) {
		t.Fatal("issuer's local copy survived its own DCBI")
	}
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("inval never acknowledged")
	}
	if tok.Err {
		t.Fatal("unexpected error ack")
	}
	if e, _ := dirOf(s, addr); e.DSharers.Any() {
		t.Fatalf("dSharers=%s after the only sharer's DCBI, want 0", e.DSharers)
	}
}

func TestIssueCacheInvalDirtyLocalCopy(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x1C000
	s.Mem.WriteUint64(addr, 42)
	if !s.L1D[0].StartMiss(0, addr, GetM, false) {
		t.Fatal("StartMiss GetM failed")
	}
	if !runSystem(s, 2000, func() bool { return s.L1D[0].WriteState(addr) == Modified }) {
		t.Fatal("core 0 never got M")
	}
	tok := s.IssueCacheInval(500, 0, addr, false)
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("dirty-line inval never acknowledged")
	}
	if tok.Err {
		t.Fatal("unexpected error ack for a dirty local copy")
	}
	if e, _ := dirOf(s, addr); e.DSharers.Any() || e.Owner != -1 {
		t.Fatalf("directory owner=%d dSharers=%s after dirty DCBI, want -1/0", e.Owner, e.DSharers)
	}
	// The line is refetchable and coherent afterwards.
	fillShared(t, s, 1, addr)
}

func TestIssueCacheInvalICacheOnDOnlyLine(t *testing.T) {
	s := NewSystem(DefaultConfig(2))
	const addr = 0x20000
	fillShared(t, s, 1, addr) // D-cache only
	tok := s.IssueCacheInval(200, 0, addr, true)
	if !runSystem(s, 3000, func() bool { return tok.Done }) {
		t.Fatal("ICBI never acknowledged")
	}
	if !s.L1D[1].Present(addr) {
		t.Fatal("ICBI of a D-only line invalidated the D copy")
	}
}
