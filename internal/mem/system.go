package mem

import (
	"fmt"

	"repro/internal/interconnect"
)

// timedTxn is one queued transaction with its earliest-processing cycle.
type timedTxn struct {
	txn   Txn
	ready uint64
}

// InvalToken tracks one outstanding ICBI/DCBI broadcast. The issuing core's
// store buffer holds the cache-op until Done. Born is the cycle the
// broadcast was issued; the liveness watchdog uses it to spot tokens whose
// acknowledgement has been lost.
type InvalToken struct {
	Addr uint64
	Born uint64
	Done bool
	Err  bool
}

// System is the whole memory hierarchy of the simulated CMP.
type System struct {
	Cfg   *Config
	Mem   *Memory
	fab   interconnect.Fabric[Txn]
	L1I   []*L1
	L1D   []*L1
	Banks []*Bank
	l3    *L3

	// OnFault is called when a response carries an error code (barrier
	// filter misuse or timeout). The machine maps it to a core fault.
	OnFault func(core int, t Txn)

	respInbox   []timedTxn
	invalTokens []map[uint64]*InvalToken // per core, keyed by txn ID
	nextInvalID []uint64

	// chaos is the optional fault injector (see chaos.go). nil = off.
	chaos ChaosHook

	// obs is the optional passive event observer (the sanitizer's
	// event-triggered checks). It must be read-only: it is consulted
	// nowhere in NextEvent, so an observer that mutated timing state
	// would break the fast path's behaviour invariance.
	obs EventObserver

	// wake[core] is invoked whenever a response (fill, upgrade ack, or
	// invalidation ack) is delivered to that core; the machine uses it to
	// drop the core out of the quiescent fast path.
	wake []func()
}

// NewSystem builds the memory hierarchy for cfg.
func NewSystem(cfg Config) *System {
	s := &System{
		Cfg:         &cfg,
		Mem:         NewMemory(),
		invalTokens: make([]map[uint64]*InvalToken, cfg.Cores),
		nextInvalID: make([]uint64, cfg.Cores),
		wake:        make([]func(), cfg.Cores),
	}
	fab, err := interconnect.New(cfg.Fabric, cfg.fabricGeometry(), interconnect.Delivery[Txn]{
		Req:  s.deliverReq,
		Resp: s.deliverResp,
	})
	if err != nil {
		// Validate catches fabric-geometry mismatches before construction;
		// reaching this is a caller bug, reported like the other internal
		// config panics so harness workers can recover and attribute it.
		panic(fmt.Errorf("mem: %v: %w", err, ErrConfig))
	}
	s.fab = fab
	for c := 0; c < cfg.Cores; c++ {
		s.L1I = append(s.L1I, newL1(s, c, true))
		s.L1D = append(s.L1D, newL1(s, c, false))
		s.invalTokens[c] = make(map[uint64]*InvalToken)
	}
	for b := 0; b < cfg.L2Banks; b++ {
		s.Banks = append(s.Banks, newBank(s, b))
	}
	s.l3 = newL3(s)
	return s
}

// L3Cache exposes the L3 for tests.
func (s *System) L3Cache() *L3 { return s.l3 }

func (s *System) deliverReq(bank int, t Txn, at uint64) {
	s.Banks[bank].push(t, at)
}

func (s *System) deliverResp(core int, t Txn, at uint64) {
	_ = core // == t.Core; the inbox dispatches on the transaction itself
	s.respInbox = append(s.respInbox, timedTxn{t, at})
}

// Fabric exposes the interconnect (stats, tests, topology probes).
func (s *System) Fabric() interconnect.Fabric[Txn] { return s.fab }

// FabricStats emits the fabric's counters into set (core.StatsReport).
func (s *System) FabricStats(set func(name string, v uint64)) { s.fab.StatsInto(set) }

// FabricName returns the fabric kind's short name ("bus", "xbar", "mesh").
func (s *System) FabricName() string { return s.fab.Kind().String() }

// ReqLinkName names the fabric link or port a request transaction crosses,
// for fault attribution.
func (s *System) ReqLinkName(t Txn) string {
	return s.fab.ReqLinkName(t.Core, s.Cfg.BankOf(t.Addr))
}

// RespLinkName names the fabric link or port a response from bank crosses.
func (s *System) RespLinkName(bank int, t Txn) string {
	return s.fab.RespLinkName(bank, t.Core)
}

// lineOccupancy returns the cycles one cache line occupies a fabric
// channel or link. The bus and the crossbar run at the paper's data-path
// width; the mesh's point-to-point links use their own (wider by default)
// width, MeshLinkBytesPerCycle.
func (s *System) lineOccupancy() uint64 {
	w := s.Cfg.DataBusBytesPerCycle
	if s.Cfg.Fabric == interconnect.KindMesh {
		w = s.Cfg.MeshLinkBytesPerCycle
	}
	if occ := s.Cfg.LineBytes / w; occ > 1 {
		return uint64(occ)
	}
	return 1
}

// reqOccupancy returns the number of cycles a request occupies a fabric
// channel: writebacks and dirty invalidations carry their line on the
// request path.
func (s *System) reqOccupancy(t Txn) uint64 {
	if t.Kind == WB || (t.Kind == InvalD && t.Dirty) {
		return s.lineOccupancy()
	}
	return 1
}

// respOccupancy returns the number of cycles a response occupies a fabric
// channel: line fills carry data, acks do not.
func (s *System) respOccupancy(t Txn) uint64 {
	if t.Kind == Fill && !t.Err {
		return s.lineOccupancy()
	}
	return 1
}

// pushRequest injects a request transaction into the fabric, available for
// arbitration at cycle ready. An attached chaos hook may delay the entry
// (its ready time moves out, so NextEvent stays exact) or reorder it ahead
// of the youngest entry the same core already has queued.
func (s *System) pushRequest(t Txn, ready uint64) {
	reorder := false
	if s.chaos != nil {
		var delay uint64
		delay, reorder = s.chaos.OnRequest(t, ready)
		ready += delay
	}
	s.fab.PushRequest(interconnect.Message[Txn]{
		Src:     t.Core,
		Dst:     s.Cfg.BankOf(t.Addr),
		Occ:     s.reqOccupancy(t),
		Payload: t,
	}, ready, reorder)
}

// pushResponse injects a response from bank into the fabric.
func (s *System) pushResponse(bank int, t Txn, ready uint64) {
	if s.chaos != nil {
		ready += s.chaos.OnResponse(bank, t, ready)
	}
	s.fab.PushResponse(interconnect.Message[Txn]{
		Src:     bank,
		Dst:     t.Core,
		Occ:     s.respOccupancy(t),
		Payload: t,
	}, ready)
}

// IssueCacheInval performs the core-local half of an ICBI/DCBI (drop the
// line from the issuing core's own L1) and broadcasts the invalidation. The
// returned token completes when the bank acknowledges.
func (s *System) IssueCacheInval(now uint64, core int, addr uint64, icache bool) *InvalToken {
	la := s.Cfg.LineAddr(addr)
	var dirty bool
	kind := InvalD
	if icache {
		s.L1I[core].localInval(la)
		kind = InvalI
	} else {
		_, dirty = s.L1D[core].localInval(la)
	}
	s.nextInvalID[core]++
	id := s.nextInvalID[core]
	tok := &InvalToken{Addr: la, Born: now}
	s.invalTokens[core][id] = tok
	s.pushRequest(Txn{Kind: kind, Addr: la, Core: core, ID: id, Dirty: dirty}, now+1)
	return tok
}

// Tick advances the memory system one cycle.
func (s *System) Tick(now uint64) {
	// 0. Let the fault injector act (it may append to respInbox or the
	// bus queues before this cycle's delivery and arbitration).
	if s.chaos != nil {
		s.chaos.Tick(now)
	}
	// 1. Deliver arrived responses to the L1s / inval tokens.
	for i := 0; i < len(s.respInbox); {
		if s.respInbox[i].ready > now {
			i++
			continue
		}
		t := s.respInbox[i].txn
		s.respInbox = append(s.respInbox[:i], s.respInbox[i+1:]...)
		s.dispatchResp(now, t)
	}
	// 2. Banks, then L3/DRAM, then the fabric grants new transfers.
	for _, bk := range s.Banks {
		bk.Tick(now)
	}
	s.l3.Tick(now)
	s.fab.Tick(now)
}

// SetWakeHook registers fn to run whenever a response is delivered to core.
func (s *System) SetWakeHook(core int, fn func()) { s.wake[core] = fn }

func (s *System) dispatchResp(now uint64, t Txn) {
	if fn := s.wake[t.Core]; fn != nil {
		fn()
	}
	defer s.observe(now, t)
	switch t.Kind {
	case InvalAck:
		tok := s.invalTokens[t.Core][t.ID]
		if tok != nil {
			tok.Done = true
			tok.Err = t.Err
			delete(s.invalTokens[t.Core], t.ID)
			if t.Err && s.OnFault != nil {
				s.OnFault(t.Core, t)
			}
		}
	case Fill, UpgAck:
		if t.Exclusive || t.Kind == UpgAck {
			s.Banks[s.Cfg.BankOf(t.Addr)].grantDelivered(t.Addr, t.Core, now)
		}
		l1 := s.L1D[t.Core]
		if t.ReqKind == GetI {
			l1 = s.L1I[t.Core]
		}
		if errFill := l1.onResponse(now, t); errFill && s.OnFault != nil {
			s.OnFault(t.Core, t)
		}
	}
}

// dirDropSharer records a silent clean eviction with the owning bank.
func (s *System) dirDropSharer(addr uint64, core int, icache bool) {
	s.Banks[s.Cfg.BankOf(addr)].dropSharer(addr, core, icache)
}

// hookNextEventer is the optional BankHook extension the bulk fast-forward
// relies on: the earliest future cycle at which the hook may spontaneously
// produce work (a queued or timed-out release). Hooks that do not implement
// it simply disable bulk skipping (per-core skipping is unaffected).
type hookNextEventer interface {
	NextEvent(now uint64) (uint64, bool)
}

// NextEvent returns the earliest cycle at or after now at which Tick would
// do anything beyond per-cycle busy accounting: deliver a response, grant or
// launch a fabric transfer, process a bank or L3 queue entry, or release a
// parked fill.
// ok=false means the hierarchy is completely idle and, absent new requests,
// no event will ever occur.
func (s *System) NextEvent(now uint64) (event uint64, ok bool) {
	consider := func(t uint64) {
		if t < now {
			t = now
		}
		if !ok || t < event {
			event, ok = t, true
		}
	}
	for i := range s.respInbox {
		consider(s.respInbox[i].ready)
	}
	if t, o := s.fab.NextEvent(now); o {
		consider(t)
	}
	for _, bk := range s.Banks {
		if t, o := bk.nextEvent(now); o {
			consider(t)
		}
	}
	if t, o := s.l3.nextEvent(); o {
		consider(t)
	}
	if s.chaos != nil {
		if t, o := s.chaos.NextEvent(now); o {
			consider(t)
		}
	}
	return event, ok
}

// SkipIdle credits n cycles of per-cycle busy accounting that Tick would
// have performed between now and the next event. The caller must have
// verified (via NextEvent) that no event falls inside the skipped window.
func (s *System) SkipIdle(now, n uint64) {
	s.fab.SkipIdle(now, n)
}

// Quiet reports whether nothing is in flight anywhere in the hierarchy
// (used by tests and by drain checks).
func (s *System) Quiet() bool {
	if len(s.respInbox) > 0 || !s.fab.Quiet() || !s.l3.Quiet() {
		return false
	}
	for _, bk := range s.Banks {
		if !bk.Quiet() {
			return false
		}
	}
	for c := 0; c < s.Cfg.Cores; c++ {
		if !s.L1I[c].Quiet() || !s.L1D[c].Quiet() {
			return false
		}
		if len(s.invalTokens[c]) > 0 {
			return false
		}
	}
	return true
}

// CoreQuiet reports whether one core has no outstanding misses or
// invalidations (the FENCE drain condition, together with the core's own
// LSQ/store-buffer state).
func (s *System) CoreQuiet(core int) bool {
	return s.L1I[core].Quiet() && s.L1D[core].Quiet() && len(s.invalTokens[core]) == 0
}
