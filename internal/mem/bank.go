package mem

// BankHook is the barrier filter's attachment point in an L2 bank
// controller. The bank shows the hook every invalidation transaction and
// every fill request that reaches it; the hook may park fills (withhold
// service) and later release them through PopReleased. A nil hook disables
// filtering.
type BankHook interface {
	// OnInval observes an InvalD/InvalI transaction for addr from core.
	// It returns true when the transaction is an illegal barrier-protocol
	// transition that must fault the requester (§3.3.4).
	OnInval(now uint64, addr uint64, core int) (fault bool)

	// OnFill observes a fill request. park=true parks the request inside
	// the hook (the bank must not respond); fault=true makes the bank
	// answer with an error-coded fill.
	OnFill(now uint64, t Txn) (park bool, fault bool)

	// PopReleased yields a previously parked request that is now ready
	// to be serviced, with an error flag for timeout releases. ok=false
	// when none is pending this cycle.
	PopReleased(now uint64) (t Txn, errFill bool, ok bool)
}

// dirEntry is the full-map directory state for one line: which L1Ds and
// L1Is may hold it and which core (if any) owns it in Modified state. The
// directory is idealized (untagged, unbounded), standing in for the snoopy
// broadcast of the paper's bus without transient-state complexity. Sharer
// sets are variable-width bitsets, so the directory imposes no core-count
// cap.
type dirEntry struct {
	dSharers Sharers
	iSharers Sharers
	owner    int16 // -1 when no L1 holds the line Modified
}

// Bank is one bank of the shared L2 plus its slice of the directory and an
// optional barrier-filter hook.
type Bank struct {
	sys   *System
	idx   int
	cache *Cache
	dir   map[uint64]*dirEntry
	hook  BankHook

	inQ      []timedTxn
	refillQ  []timedTxn
	pendMiss map[uint64][]Txn // line addr -> requests awaiting L3/DRAM
	grants   map[uint64]grant // line addr -> most recent fill grant

	// Statistics.
	Hits, MissesToL3, Invals, Upgrades, WBs, Parked, Faults, Released uint64
}

// grant records who last received a line exclusively. delivered is the
// cycle the fill/ack actually reached the core (0 while still in flight);
// the hold window runs from delivery so that bus congestion cannot let a
// competitor snipe a grant before its owner has even seen the line.
type grant struct {
	core      int
	delivered uint64 // 0 = fill still in flight
}

func newBank(sys *System, idx int) *Bank {
	cfg := sys.Cfg
	return &Bank{
		sys:      sys,
		idx:      idx,
		cache:    NewCache("L2", cfg.L2Size/cfg.L2Banks, cfg.L2Assoc, cfg.LineBytes),
		dir:      make(map[uint64]*dirEntry),
		pendMiss: make(map[uint64][]Txn),
		grants:   make(map[uint64]grant),
	}
}

// heldFor reports whether addr is inside another core's grant-hold window,
// returning the cycle at which the conflicting request may retry.
func (bk *Bank) heldFor(now uint64, addr uint64, core int) (uint64, bool) {
	g, ok := bk.grants[addr]
	if !ok {
		return 0, false
	}
	if g.core == core {
		delete(bk.grants, addr)
		return 0, false
	}
	if g.delivered == 0 {
		// Fill still in flight: poll again shortly.
		return now + 8, true
	}
	hold := uint64(bk.sys.Cfg.GrantHoldCycles)
	if now >= g.delivered+hold {
		delete(bk.grants, addr)
		return 0, false
	}
	return g.delivered + hold, true
}

// grantDelivered records that the exclusive fill for addr reached its core.
func (bk *Bank) grantDelivered(addr uint64, core int, now uint64) {
	if g, ok := bk.grants[addr]; ok && g.core == core && g.delivered == 0 {
		g.delivered = now
		bk.grants[addr] = g
	}
	// Bound the map: sweep stale delivered grants occasionally.
	if len(bk.grants) > 8192 {
		hold := uint64(bk.sys.Cfg.GrantHoldCycles)
		for a, g := range bk.grants {
			if g.delivered != 0 && now > g.delivered+4*hold {
				delete(bk.grants, a)
			}
		}
	}
}

// SetHook attaches a barrier filter hook.
func (bk *Bank) SetHook(h BankHook) { bk.hook = h }

// DirEntry is a read-only copy of one directory entry (sanitizer/test use).
type DirEntry struct {
	DSharers Sharers
	ISharers Sharers
	Owner    int // -1 when no L1D holds the line Modified
}

// DirLookup returns the directory entry for a line, if one has ever been
// created. The sharer sets are copies, so callers cannot alias live
// directory state; no bank state changes.
func (bk *Bank) DirLookup(addr uint64) (DirEntry, bool) {
	e, ok := bk.dir[addr]
	if !ok {
		return DirEntry{Owner: -1}, false
	}
	return DirEntry{DSharers: e.dSharers.Clone(), ISharers: e.iSharers.Clone(), Owner: int(e.owner)}, true
}

// L2Peek returns the L2 array state of a line without touching LRU order.
func (bk *Bank) L2Peek(addr uint64) LineState { return bk.cache.Peek(addr) }

func (bk *Bank) entry(addr uint64) *dirEntry {
	e, ok := bk.dir[addr]
	if !ok {
		e = &dirEntry{owner: -1}
		bk.dir[addr] = e
	}
	return e
}

// push receives a transaction from the bus, arriving at cycle at.
func (bk *Bank) push(t Txn, at uint64) {
	bk.inQ = append(bk.inQ, timedTxn{t, at})
}

// pushRefill receives a line coming back from L3/DRAM.
func (bk *Bank) pushRefill(t Txn, at uint64) {
	bk.refillQ = append(bk.refillQ, timedTxn{t, at})
}

// Tick processes refills, released parked fills (filter bandwidth), and at
// most one new request per cycle.
func (bk *Bank) Tick(now uint64) {
	// Refills from below complete pending misses without consuming the
	// request slot (they use the fill pipeline).
	for i := 0; i < len(bk.refillQ); {
		if bk.refillQ[i].ready > now {
			i++
			continue
		}
		t := bk.refillQ[i].txn
		bk.refillQ = append(bk.refillQ[:i], bk.refillQ[i+1:]...)
		bk.finishRefill(now, t)
	}

	// Parked fills released by the filter, up to FilterBW per cycle.
	budget := bk.sys.Cfg.FilterBW
	if budget < 1 {
		budget = 1
	}
	released := 0
	if bk.hook != nil {
		for released < budget {
			t, errFill, ok := bk.hook.PopReleased(now)
			if !ok {
				break
			}
			released++
			bk.Released++
			if errFill {
				bk.respond(now, t, true)
			} else {
				bk.serviceFill(now, t, true)
			}
			bk.sys.observe(now, t)
		}
	}
	if released > 0 {
		return // the released fills consumed this cycle's slot(s)
	}

	// One new request. Requests against a line inside another core's
	// grant-hold window are deferred in place (their ready time advanced)
	// so they cost no bank bandwidth while they wait — at high core
	// counts, spinning requesters would otherwise monopolize the bank.
	for i := 0; i < len(bk.inQ); i++ {
		if bk.inQ[i].ready > now {
			continue
		}
		t := bk.inQ[i].txn
		if t.Kind == GetM || t.Kind == GetS || t.Kind == Upgrade {
			if retry, held := bk.heldFor(now, t.Addr, t.Core); held {
				bk.inQ[i].ready = retry
				continue
			}
		}
		bk.inQ = append(bk.inQ[:i], bk.inQ[i+1:]...)
		bk.process(now, t)
		return
	}
}

func (bk *Bank) process(now uint64, t Txn) {
	switch t.Kind {
	case InvalD, InvalI:
		bk.processInval(now, t)
	case GetS, GetI, GetM:
		if bk.hook != nil {
			park, fault := bk.hook.OnFill(now, t)
			if fault {
				bk.Faults++
				bk.respond(now, t, true)
				return
			}
			if park {
				bk.Parked++
				return
			}
		}
		bk.serviceFill(now, t, false)
	case Upgrade:
		bk.processUpgrade(now, t)
	case WB:
		bk.processWB(now, t)
	}
}

func (bk *Bank) processInval(now uint64, t Txn) {
	bk.Invals++
	fault := false
	if bk.hook != nil {
		fault = bk.hook.OnInval(now, t.Addr, t.Core)
	}
	e := bk.entry(t.Addr)
	if t.Kind == InvalD {
		for c := 0; c < bk.sys.Cfg.Cores; c++ {
			if c != t.Core && e.dSharers.Has(c) {
				bk.sys.L1D[c].extInval(t.Addr)
			}
		}
		e.dSharers.Reset()
		e.owner = -1
	} else {
		for c := 0; c < bk.sys.Cfg.Cores; c++ {
			if c != t.Core && e.iSharers.Has(c) {
				bk.sys.L1I[c].extInval(t.Addr)
			}
		}
		e.iSharers.Reset()
	}
	resp := Txn{Kind: InvalAck, Addr: t.Addr, Core: t.Core, ID: t.ID, ReqKind: t.Kind, Err: fault}
	bk.sys.observe(now, t)
	// A dropped acknowledgement models a lost coherence message: the
	// invalidation above was applied, but the issuing core's token never
	// completes and its store buffer wedges — the cycle-limit watchdog
	// (and the chaos harness) must attribute that hang, not mask it.
	if bk.sys.chaos != nil && bk.sys.chaos.OnInvalAckDrop(now, resp) {
		return
	}
	bk.sys.pushResponse(bk.idx, resp, now+uint64(bk.sys.Cfg.L2Lat))
}

// serviceFill runs the normal fill path (directory + L2 array + miss path).
// skipHook marks fills re-injected by the filter after release.
func (bk *Bank) serviceFill(now uint64, t Txn, skipHook bool) {
	_ = skipHook
	e := bk.entry(t.Addr)
	penalty := 0

	switch t.Kind {
	case GetS, GetI:
		if e.owner >= 0 && int(e.owner) != t.Core {
			// Pull the dirty line out of the owner's L1 (data is
			// functionally current in Memory already).
			bk.sys.L1D[e.owner].extDowngrade(t.Addr)
			e.owner = -1
			penalty += bk.sys.Cfg.OwnerFetchPenalty
		}
		if t.Kind == GetS {
			e.dSharers.Set(t.Core)
		} else {
			e.iSharers.Set(t.Core)
		}
	case GetM:
		had := false
		for c := 0; c < bk.sys.Cfg.Cores; c++ {
			if c != t.Core && e.dSharers.Has(c) {
				bk.sys.L1D[c].extInval(t.Addr)
				had = true
			}
		}
		if e.owner >= 0 && int(e.owner) != t.Core {
			penalty += bk.sys.Cfg.OwnerFetchPenalty
		} else if had {
			penalty += bk.sys.Cfg.SharerInvalPenalty
		}
		e.dSharers.Reset()
		e.dSharers.Set(t.Core)
		e.owner = int16(t.Core)
	}

	if t.Kind == GetM {
		bk.grants[t.Addr] = grant{core: t.Core}
	}
	if bk.cache.Lookup(t.Addr) != Invalid {
		bk.Hits++
		bk.respondAt(t, now+uint64(bk.sys.Cfg.L2Lat+penalty))
		return
	}
	// L2 miss: forward to L3. Coalesce requests for the same line.
	bk.MissesToL3++
	la := t.Addr
	bk.pendMiss[la] = append(bk.pendMiss[la], t)
	if len(bk.pendMiss[la]) == 1 {
		bk.sys.l3.push(bk.idx, la, now+uint64(bk.sys.Cfg.L2Lat+penalty))
	}
}

func (bk *Bank) finishRefill(now uint64, t Txn) {
	bk.cache.Insert(t.Addr, Shared)
	// Non-inclusive: an L2 victim needs no back-invalidation; its data is
	// in Memory and the directory is untagged.
	reqs := bk.pendMiss[t.Addr]
	delete(bk.pendMiss, t.Addr)
	for i, r := range reqs {
		// Stagger multiple waiters by a cycle each.
		bk.respondAt(r, now+uint64(i))
	}
}

func (bk *Bank) respondAt(t Txn, ready uint64) {
	resp := Txn{
		Kind:      Fill,
		Addr:      t.Addr,
		Core:      t.Core,
		ID:        t.ID,
		ReqKind:   t.Kind,
		Exclusive: t.Kind == GetM,
		Prefetch:  t.Prefetch,
	}
	bk.sys.pushResponse(bk.idx, resp, ready)
}

// respond sends an (error) fill immediately.
func (bk *Bank) respond(now uint64, t Txn, errFill bool) {
	resp := Txn{
		Kind:    Fill,
		Addr:    t.Addr,
		Core:    t.Core,
		ID:      t.ID,
		ReqKind: t.Kind,
		Err:     errFill,
	}
	bk.sys.pushResponse(bk.idx, resp, now+1)
}

func (bk *Bank) processUpgrade(now uint64, t Txn) {
	bk.Upgrades++
	bk.grants[t.Addr] = grant{core: t.Core}
	e := bk.entry(t.Addr)
	penalty := 0
	for c := 0; c < bk.sys.Cfg.Cores; c++ {
		if c != t.Core && e.dSharers.Has(c) {
			bk.sys.L1D[c].extInval(t.Addr)
			penalty = bk.sys.Cfg.SharerInvalPenalty
		}
	}
	e.dSharers.Reset()
	e.dSharers.Set(t.Core)
	e.owner = int16(t.Core)
	resp := Txn{Kind: UpgAck, Addr: t.Addr, Core: t.Core, ID: t.ID, ReqKind: t.Kind}
	bk.sys.pushResponse(bk.idx, resp, now+uint64(bk.sys.Cfg.L2Lat+penalty))
}

func (bk *Bank) processWB(now uint64, t Txn) {
	bk.WBs++
	e := bk.entry(t.Addr)
	e.dSharers.Clear(t.Core)
	if int(e.owner) == t.Core {
		e.owner = -1
	}
	bk.cache.Insert(t.Addr, Modified)
	_ = now
}

// dropSharer records a silent clean eviction.
func (bk *Bank) dropSharer(addr uint64, core int, icache bool) {
	e, ok := bk.dir[addr]
	if !ok {
		return
	}
	if icache {
		e.iSharers.Clear(core)
	} else {
		e.dSharers.Clear(core)
		if int(e.owner) == core {
			e.owner = -1
		}
	}
}

// nextEvent returns the earliest cycle at which this bank's Tick could do
// work: a refill completing, a queued request (including a grant-hold retry,
// whose ready time was advanced in place) becoming serviceable, or the hook
// releasing a parked fill. A hook that does not implement the optional
// NextEvent query reports an event every cycle, which disables bulk
// fast-forwarding without affecting correctness.
func (bk *Bank) nextEvent(now uint64) (event uint64, ok bool) {
	consider := func(t uint64) {
		if !ok || t < event {
			event, ok = t, true
		}
	}
	for i := range bk.refillQ {
		consider(bk.refillQ[i].ready)
	}
	for i := range bk.inQ {
		consider(bk.inQ[i].ready)
	}
	if bk.hook != nil {
		if h, probe := bk.hook.(hookNextEventer); probe {
			if t, o := h.NextEvent(now); o {
				consider(t)
			}
		} else {
			consider(now)
		}
	}
	return event, ok
}

// Quiet reports whether the bank has no queued or pending work.
func (bk *Bank) Quiet() bool {
	return len(bk.inQ) == 0 && len(bk.refillQ) == 0 && len(bk.pendMiss) == 0
}
