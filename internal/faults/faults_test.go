package faults

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/mem"
)

func TestMixSeedDeterministicAndDistinct(t *testing.T) {
	if MixSeed(7, 3) != MixSeed(7, 3) {
		t.Fatal("MixSeed is not deterministic")
	}
	seen := map[uint64]bool{}
	for salt := uint64(0); salt < 100; salt++ {
		v := MixSeed(42, salt)
		if seen[v] {
			t.Fatalf("MixSeed collision at salt %d", salt)
		}
		seen[v] = true
	}
}

func TestProfilesResolveByName(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		if names[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		got, ok := ProfileByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) failed", p.Name)
		}
	}
	if !names["none"] || Profiles()[0].Active() {
		t.Fatal("profile set must open with an inactive baseline")
	}
	if _, ok := ProfileByName("no-such"); ok {
		t.Fatal("unknown profile resolved")
	}
}

// drive feeds a fixed synthetic transaction stream through every injector
// site and returns a transcript of its decisions.
func drive(in *Injector) string {
	out := ""
	for i := 0; i < 300; i++ {
		req := mem.Txn{Kind: mem.GetS, Addr: uint64(i) * 64, Core: i % 4, ID: uint64(i + 1)}
		d, r := in.OnRequest(req, uint64(i))
		out += fmt.Sprintf("req %d %v;", d, r)
		inv := mem.Txn{Kind: mem.InvalD, Addr: uint64(i) * 64, Core: i % 4}
		d, r = in.OnRequest(inv, uint64(i))
		out += fmt.Sprintf("inv %d %v;", d, r)
		resp := mem.Txn{Kind: mem.Fill, Addr: uint64(i) * 64, Core: i % 4, ID: uint64(i + 1)}
		out += fmt.Sprintf("resp %d;", in.OnResponse(0, resp, uint64(i)))
		out += fmt.Sprintf("ack %v;", in.OnInvalAckDrop(uint64(i), inv))
	}
	return out
}

func TestInjectorReplaysDeterministically(t *testing.T) {
	p, _ := ProfileByName("monsoon")
	mk := func(seed uint64) *Injector {
		m := core.NewMachine(core.DefaultConfig(2))
		return New(p, seed, m.Sys, 4)
	}
	a, b := mk(42), mk(42)
	ta, tb := drive(a), drive(b)
	if ta != tb {
		t.Fatal("same seed produced different decision streams")
	}
	if a.TotalInjected() != b.TotalInjected() || a.Summary() != b.Summary() {
		t.Fatalf("same seed, different attribution: %q vs %q", a.Summary(), b.Summary())
	}
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	if tc := drive(mk(43)); tc == ta {
		t.Fatal("different seed replayed the identical decision stream")
	}
}

func TestOnlyAddrsRestrictsSites(t *testing.T) {
	m := core.NewMachine(core.DefaultConfig(2))
	target := uint64(0x10000)
	in := New(Profile{FillDelayP: 1, FillDelayMin: 5, FillDelayMax: 5,
		OnlyAddrs: []uint64{target}}, 7, m.Sys, 2)
	if d, _ := in.OnRequest(mem.Txn{Kind: mem.GetS, Addr: target + 4096, Core: 0, ID: 1}, 0); d != 0 {
		t.Fatalf("off-target address delayed by %d", d)
	}
	if d, _ := in.OnRequest(mem.Txn{Kind: mem.GetS, Addr: target + 8, Core: 0, ID: 2}, 0); d != 5 {
		t.Fatalf("same-line address delayed by %d, want 5", d)
	}
}

func TestPreemptPlanDeterministic(t *testing.T) {
	p, _ := ProfileByName("preempt")
	a := p.PreemptPlan(9, 4, 200_000)
	b := p.PreemptPlan(9, 4, 200_000)
	if len(a) == 0 {
		t.Fatal("empty plan over a 20x-mean horizon")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different preemption plans")
	}
	last := uint64(0)
	for _, ev := range a {
		if ev.At >= 200_000 || ev.At <= last {
			t.Fatalf("event at %d out of order or past horizon", ev.At)
		}
		if ev.TID < 0 || ev.TID >= 4 || ev.Gap == 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		last = ev.At
	}
	if p2 := (Profile{}); p2.PreemptPlan(9, 4, 200_000) != nil {
		t.Fatal("inactive profile produced a plan")
	}
}

// TestMisuseIsStateAware checks the injector's safety rule: a duplicate
// arrival for a Waiting thread is indistinguishable from the real one (it
// would open the barrier early — silent corruption), so the injector must
// never fire at Waiting threads; Blocking and Servicing are fair game.
func TestMisuseIsStateAware(t *testing.T) {
	m := core.NewMachine(core.DefaultConfig(2))
	in := New(Profile{MisuseEvery: 1}, 5, m.Sys, 2)
	f := filter.New("t", 0x1_0000, 0x2_0000, 64, 2)
	f.RegisterAll()
	in.SetFilters([]*filter.Filter{f})

	for i := 0; i < 50; i++ { // all threads Waiting: nothing may fire
		in.injectMisuse(uint64(i))
	}
	if in.MisuseInvals != 0 {
		t.Fatalf("%d misuse invals against Waiting threads", in.MisuseInvals)
	}

	f.InitServicing() // now every thread is a detectable-misuse target
	for i := 0; i < 50; i++ {
		in.injectMisuse(uint64(100 + i))
	}
	if in.MisuseInvals == 0 {
		t.Fatal("no misuse invals against Servicing threads")
	}
}

// TestDeallocatedSlotInvalIsHarmless covers the "arrival on a deallocated
// slot" misuse: once the OS swaps a filter out of its bank, stray
// invalidations of its old lines must degrade to plain invalidations — no
// fault, no state change.
func TestDeallocatedSlotInvalIsHarmless(t *testing.T) {
	bank := filter.NewBankFilters(2)
	f := filter.New("t", 0x1_0000, 0x2_0000, 64, 2)
	f.RegisterAll()
	if err := bank.Add(f); err != nil {
		t.Fatal(err)
	}
	// Installed and Waiting: the arrival inval is a legal arrival.
	if fault := bank.OnInval(0, f.ArrivalAddr(0), 0); fault {
		t.Fatal("legal arrival reported as fault")
	}
	if f.State(0) != filter.Blocking {
		t.Fatalf("thread 0 state %v, want Blocking", f.State(0))
	}
	bank.Remove(f)
	if fault := bank.OnInval(1, f.ArrivalAddr(1), 0); fault {
		t.Fatal("inval on deallocated slot reported as fault")
	}
	if f.State(1) != filter.Waiting || f.Errors != 0 {
		t.Fatalf("deallocated filter mutated: state=%v errors=%d", f.State(1), f.Errors)
	}
}

// TestSpuriousFillIsDroppedAsStale checks the ID-disjointness invariant:
// synthetic fill IDs start at 1<<62, so no live MSHR can ever match one.
func TestSpuriousFillIsDroppedAsStale(t *testing.T) {
	m := core.NewMachine(core.DefaultConfig(2))
	in := New(Profile{SpuriousFillEvery: 1}, 11, m.Sys, 2)
	in.SetFillTargets([]uint64{core.DataBase})
	in.injectSpurious(0)
	if in.SpuriousFills != 1 {
		t.Fatalf("spurious fills = %d, want 1", in.SpuriousFills)
	}
	if in.nextID <= spuriousIDBase {
		t.Fatal("synthetic IDs not drawn from the reserved range")
	}
	// Delivering the injected response must not perturb the idle machine.
	for i := 0; i < 100; i++ {
		m.Step()
	}
	if m.Cores[0].Fault != nil || m.Cores[1].Fault != nil {
		t.Fatal("spurious fill faulted an idle machine")
	}
}
