// Package faults is the deterministic fault-injection layer of the
// simulator. An Injector implements mem.ChaosHook and, replayable from a
// single seed, perturbs the machine at the points a real CMP could
// misbehave: delayed and reordered fabric requests (attributed to the bus,
// crossbar port, or mesh link they would traverse), late responses, dropped
// invalidation acknowledgements, spurious fill responses, filter-table
// misuse transactions, and (through PreemptPlan, executed by the harness
// with the OS model) thread preemption and migration mid-barrier.
//
// Determinism rules: every decision comes from per-site xorshift streams
// derived from the injector's seed, consumed in simulation order; scheduled
// injections fire only at cycles announced through NextEvent. The same seed
// therefore replays byte-identically regardless of host parallelism or the
// quiescent-core fast path.
package faults

import (
	"fmt"
	"strings"

	"repro/internal/filter"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Profile configures one injector: per-opportunity probabilities for the
// bus and bank sites, and mean gaps (in cycles, 0 = off) for the scheduled
// injections. A zero Profile injects nothing.
type Profile struct {
	Name string

	// Request (address bus) path.
	FillDelayP    float64 // P(delay a GetS/GetI/GetM request)
	FillDelayMin  uint64
	FillDelayMax  uint64
	InvalDelayP   float64 // P(delay an InvalD/InvalI request)
	InvalDelayMax uint64
	ReorderP      float64 // P(new request jumps its core's youngest queued entry)

	// Response (data) path.
	RespDelayP   float64
	RespDelayMax uint64

	// Bank-side invalidation acknowledgements.
	AckDropP float64

	// Scheduled injections: mean gap in cycles between events.
	SpuriousFillEvery uint64
	MisuseEvery       uint64

	// EvictEvery forcibly deallocates a random live filter entry (soft
	// error in the table's valid bits, or an aggressive OS reclaiming
	// entries under pressure). The victim's later arrival, exit, or fill
	// hits the Evicted state and faults attributably.
	EvictEvery uint64

	// LockEvictEvery forcibly deallocates a random live lock table entry —
	// the lock-side twin of EvictEvery. Evicting the holder frees the lock
	// and grants the next waiter (a deallocated holder must not wedge the
	// queue); the victim's later acquire, release, or fill hits the
	// Evicted state and faults attributably.
	LockEvictEvery uint64

	// FilterCapOverride, when positive, shrinks every bank's filter-table
	// entry capacity for the cell (applied by the harness when building
	// the machine config): an allocation flood that must spill to the
	// software barrier instead of wedging.
	FilterCapOverride int

	// StateFlipEvery injects soft errors into L1D tag/state arrays: a
	// random valid Shared line is silently promoted to Modified. The
	// caches hold no data, so the flip cannot corrupt results — it creates
	// exactly the kind of silent coherence-state disagreement only the
	// sanitizer's MSI checker can observe.
	StateFlipEvery uint64

	// OS preemption, executed by the harness (not the memory hook).
	PreemptEvery uint64 // mean gap between preemptions
	PreemptGap   uint64 // mean cycles a victim stays off-core

	// OnlyAddrs restricts the bus/ack sites to these line addresses
	// (nil = every address). Scheduled injections pick their own targets.
	OnlyAddrs []uint64
}

// Active reports whether the profile injects anything at all.
func (p Profile) Active() bool {
	return p.FillDelayP > 0 || p.InvalDelayP > 0 || p.ReorderP > 0 ||
		p.RespDelayP > 0 || p.AckDropP > 0 ||
		p.SpuriousFillEvery > 0 || p.MisuseEvery > 0 || p.PreemptEvery > 0 ||
		p.StateFlipEvery > 0 || p.EvictEvery > 0 || p.LockEvictEvery > 0 ||
		p.FilterCapOverride > 0
}

// WantsPreemption reports whether the harness must drive a preemption plan.
func (p Profile) WantsPreemption() bool { return p.PreemptEvery > 0 }

// Profiles returns the standard injector set the chaos harness sweeps:
// one quiet baseline, one profile per fault class, and a combined profile.
func Profiles() []Profile {
	return []Profile{
		{Name: "none"},
		{Name: "bus-delay", FillDelayP: 0.05, FillDelayMin: 1, FillDelayMax: 400,
			InvalDelayP: 0.05, InvalDelayMax: 400, RespDelayP: 0.05, RespDelayMax: 400},
		{Name: "bus-reorder", ReorderP: 0.10},
		{Name: "ack-drop", AckDropP: 0.02},
		{Name: "spurious-fill", SpuriousFillEvery: 500},
		{Name: "filter-misuse", MisuseEvery: 800},
		{Name: "preempt", PreemptEvery: 10_000, PreemptGap: 2_000},
		{Name: "state-flip", StateFlipEvery: 2_000},
		{Name: "alloc-flood", FilterCapOverride: 1},
		{Name: "forced-evict", EvictEvery: 6_000},
		{Name: "lock-evict", LockEvictEvery: 6_000},
		{Name: "lock-preempt", PreemptEvery: 8_000, PreemptGap: 1_500},
		{Name: "migrate-storm", PreemptEvery: 3_000, PreemptGap: 400},
		{Name: "monsoon", FillDelayP: 0.02, FillDelayMin: 1, FillDelayMax: 200,
			ReorderP: 0.02, RespDelayP: 0.02, RespDelayMax: 200, AckDropP: 0.004,
			SpuriousFillEvery: 1500, MisuseEvery: 2500},
	}
}

// ProfileByName finds a standard profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the standard profiles, in sweep order — the simd
// server quotes it when rejecting a spec naming an unknown chaos profile.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Record is one injected fault, for attribution in chaos reports.
type Record struct {
	Cycle  uint64
	Site   string
	Core   int
	Addr   uint64
	Detail string
}

func (r Record) String() string {
	s := fmt.Sprintf("@%d %s core%d addr=%#x", r.Cycle, r.Site, r.Core, r.Addr)
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

// MixSeed derives an independent stream seed from (seed, salt); the chaos
// harness uses it for per-cell and per-attempt seeds, the injector for its
// per-site streams (splitmix64 finalizer).
func MixSeed(seed, salt uint64) uint64 {
	z := seed + salt*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// spuriousIDBase keeps synthetic transaction IDs disjoint from the real
// per-core ID counters (which start at 1), so receivers always classify an
// injected response as stale/unknown rather than matching a live MSHR.
const spuriousIDBase = uint64(1) << 62

// maxRecords bounds the attribution log; TotalInjected keeps counting.
const maxRecords = 256

// Injector implements mem.ChaosHook for one machine run.
type Injector struct {
	P     Profile
	sys   *mem.System
	cores int

	filters []*filter.Filter      // misuse targets (barrier filters in use)
	lockSrc func() []*filter.Lock // lock-evict targets, resolved lazily (locks install at Launch)
	targets []uint64              // spurious-fill target lines

	rngReq, rngResp, rngAck, rngSched *sim.Rand

	nextSpurious, nextMisuse, nextFlip, nextEvict, nextLockEvict uint64
	nextID                                                       uint64

	records []Record
	total   uint64

	// Per-site counters.
	FillDelays, InvalDelays, RespDelays, Reorders     uint64
	AckDrops, SpuriousFills, MisuseInvals, StateFlips uint64
	ForcedEvicts, LockEvicts                          uint64
}

var _ mem.ChaosHook = (*Injector)(nil)

// New creates an injector for the given profile and seed and attaches it to
// the memory system.
func New(p Profile, seed uint64, sys *mem.System, cores int) *Injector {
	in := &Injector{
		P:             p,
		sys:           sys,
		cores:         cores,
		rngReq:        sim.NewRand(MixSeed(seed, 1)),
		rngResp:       sim.NewRand(MixSeed(seed, 2)),
		rngAck:        sim.NewRand(MixSeed(seed, 3)),
		rngSched:      sim.NewRand(MixSeed(seed, 4)),
		nextSpurious:  ^uint64(0),
		nextMisuse:    ^uint64(0),
		nextFlip:      ^uint64(0),
		nextEvict:     ^uint64(0),
		nextLockEvict: ^uint64(0),
		nextID:        spuriousIDBase,
	}
	if p.SpuriousFillEvery > 0 {
		in.nextSpurious = 1 + in.gap(p.SpuriousFillEvery)
	}
	if p.MisuseEvery > 0 {
		in.nextMisuse = 1 + in.gap(p.MisuseEvery)
	}
	if p.StateFlipEvery > 0 {
		in.nextFlip = 1 + in.gap(p.StateFlipEvery)
	}
	if p.EvictEvery > 0 {
		in.nextEvict = 1 + in.gap(p.EvictEvery)
	}
	if p.LockEvictEvery > 0 {
		in.nextLockEvict = 1 + in.gap(p.LockEvictEvery)
	}
	sys.SetChaosHook(in)
	return in
}

// SetFilters gives the misuse injector the barrier filters in use (it needs
// their thread states to stay on the detectable side of the protocol).
func (in *Injector) SetFilters(fs []*filter.Filter) { in.filters = fs }

// SetFillTargets sets the line addresses spurious fills aim at.
func (in *Injector) SetFillTargets(addrs []uint64) { in.targets = addrs }

// SetLockSource gives the lock-evict injector a way to enumerate the live
// hardware locks. It is a closure, not a slice, because the injector is
// attached before Launch installs the locks into the bank tables.
func (in *Injector) SetLockSource(src func() []*filter.Lock) { in.lockSrc = src }

// gap draws a positive gap with the given mean from the scheduler stream.
func (in *Injector) gap(mean uint64) uint64 {
	return 1 + uint64(in.rngSched.Intn(int(2*mean)))
}

// span draws a delay in [min, max].
func span(r *sim.Rand, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + uint64(r.Intn(int(hi-lo+1)))
}

func (in *Injector) match(addr uint64) bool {
	if len(in.P.OnlyAddrs) == 0 {
		return true
	}
	la := in.sys.Cfg.LineAddr(addr)
	for _, a := range in.P.OnlyAddrs {
		if la == a {
			return true
		}
	}
	return false
}

func (in *Injector) record(cycle uint64, site string, core int, addr uint64, detail string) {
	in.total++
	if len(in.records) < maxRecords {
		in.records = append(in.records, Record{Cycle: cycle, Site: site, Core: core, Addr: addr, Detail: detail})
	}
}

// Records returns the attribution log (bounded; see TotalInjected).
func (in *Injector) Records() []Record { return in.records }

// TotalInjected returns how many faults were injected in all.
func (in *Injector) TotalInjected() uint64 { return in.total }

// Summary renders a one-line attribution of everything injected.
func (in *Injector) Summary() string {
	var parts []string
	add := func(n uint64, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(in.FillDelays, "delayed fills")
	add(in.InvalDelays, "delayed invals")
	add(in.RespDelays, "delayed responses")
	add(in.Reorders, "reordered requests")
	add(in.AckDrops, "dropped inval acks")
	add(in.SpuriousFills, "spurious fills")
	add(in.MisuseInvals, "misuse invals")
	add(in.StateFlips, "state flips")
	add(in.ForcedEvicts, "forced evictions")
	add(in.LockEvicts, "forced lock evictions")
	if len(parts) == 0 {
		return fmt.Sprintf("injector %q: nothing injected", in.P.Name)
	}
	return fmt.Sprintf("injector %q: %s", in.P.Name, strings.Join(parts, ", "))
}

// OnRequest implements mem.ChaosHook. Fault sites are named after the
// fabric link the transaction would traverse ("bus" on the shared bus,
// "xbar.c2-b1" on the crossbar, "mesh.c2(0,1)->b1(1,1)" on the NoC) so a
// chaos report attributes the perturbation to real wires.
func (in *Injector) OnRequest(t mem.Txn, ready uint64) (delay uint64, reorder bool) {
	if t.Kind.IsFillRequest() && in.P.FillDelayP > 0 && in.match(t.Addr) &&
		in.rngReq.Float64() < in.P.FillDelayP {
		delay = span(in.rngReq, in.P.FillDelayMin, in.P.FillDelayMax)
		in.FillDelays++
		in.record(ready, in.sys.ReqLinkName(t)+".fill-delay", t.Core, t.Addr, fmt.Sprintf("+%d cycles", delay))
	}
	if (t.Kind == mem.InvalD || t.Kind == mem.InvalI) && in.P.InvalDelayP > 0 &&
		in.match(t.Addr) && in.rngReq.Float64() < in.P.InvalDelayP {
		delay = span(in.rngReq, 1, in.P.InvalDelayMax)
		in.InvalDelays++
		in.record(ready, in.sys.ReqLinkName(t)+".inval-delay", t.Core, t.Addr, fmt.Sprintf("+%d cycles", delay))
	}
	if in.P.ReorderP > 0 && in.match(t.Addr) && in.rngReq.Float64() < in.P.ReorderP {
		reorder = true
		in.Reorders++
		in.record(ready, in.sys.ReqLinkName(t)+".reorder", t.Core, t.Addr, t.Kind.String())
	}
	return delay, reorder
}

// OnResponse implements mem.ChaosHook.
func (in *Injector) OnResponse(bank int, t mem.Txn, ready uint64) (delay uint64) {
	if in.P.RespDelayP > 0 && in.match(t.Addr) && in.rngResp.Float64() < in.P.RespDelayP {
		delay = span(in.rngResp, 1, in.P.RespDelayMax)
		in.RespDelays++
		in.record(ready, in.sys.RespLinkName(bank, t)+".delay", t.Core, t.Addr, fmt.Sprintf("%s +%d cycles", t.Kind, delay))
	}
	return delay
}

// OnInvalAckDrop implements mem.ChaosHook.
func (in *Injector) OnInvalAckDrop(now uint64, t mem.Txn) bool {
	if in.P.AckDropP > 0 && in.match(t.Addr) && in.rngAck.Float64() < in.P.AckDropP {
		in.AckDrops++
		in.record(now, "bank.ack-drop", t.Core, t.Addr, "invalidation applied, ack lost")
		return true
	}
	return false
}

// Tick implements mem.ChaosHook: fire the scheduled injections that are due.
func (in *Injector) Tick(now uint64) {
	if now >= in.nextSpurious {
		in.injectSpurious(now)
		in.nextSpurious = now + in.gap(in.P.SpuriousFillEvery)
	}
	if now >= in.nextMisuse {
		in.injectMisuse(now)
		in.nextMisuse = now + in.gap(in.P.MisuseEvery)
	}
	if now >= in.nextFlip {
		in.injectFlip(now)
		in.nextFlip = now + in.gap(in.P.StateFlipEvery)
	}
	if now >= in.nextEvict {
		in.injectEvict(now)
		in.nextEvict = now + in.gap(in.P.EvictEvery)
	}
	if now >= in.nextLockEvict {
		in.injectLockEvict(now)
		in.nextLockEvict = now + in.gap(in.P.LockEvictEvery)
	}
}

// NextEvent implements mem.ChaosHook.
func (in *Injector) NextEvent(now uint64) (event uint64, ok bool) {
	if in.P.SpuriousFillEvery > 0 {
		event, ok = in.nextSpurious, true
	}
	if in.P.MisuseEvery > 0 && (!ok || in.nextMisuse < event) {
		event, ok = in.nextMisuse, true
	}
	if in.P.StateFlipEvery > 0 && (!ok || in.nextFlip < event) {
		event, ok = in.nextFlip, true
	}
	if in.P.EvictEvery > 0 && (!ok || in.nextEvict < event) {
		event, ok = in.nextEvict, true
	}
	if in.P.LockEvictEvery > 0 && (!ok || in.nextLockEvict < event) {
		event, ok = in.nextLockEvict, true
	}
	if ok && event < now {
		event = now
	}
	return event, ok
}

// injectSpurious delivers a fill response nobody asked for. Its ID matches
// no MSHR, so a correct L1 must classify it as stale and drop it; anything
// else is a bug the chaos harness will surface as corruption.
func (in *Injector) injectSpurious(now uint64) {
	if len(in.targets) == 0 {
		return
	}
	addr := in.targets[in.rngSched.Intn(len(in.targets))]
	core := in.rngSched.Intn(in.cores)
	in.nextID++
	t := mem.Txn{Kind: mem.Fill, Addr: addr, Core: core, ID: in.nextID, ReqKind: mem.GetS,
		Err: in.rngSched.Float64() < 0.25}
	in.sys.InjectResponse(t, now+1)
	in.SpuriousFills++
	in.record(now, "fill.spurious", core, addr, "unsolicited fill response")
}

// injectMisuse places a duplicate arrival invalidation on the bus for a
// thread the filter is already tracking. The choice is state-aware: a
// duplicate arrival for a Waiting thread is indistinguishable from the
// legitimate one (no hardware could tell them apart, and it would open the
// barrier early), so only the detectable-misuse states are targeted —
// Blocking (double arrival, §3.3.4) and Servicing (arrival before exit).
func (in *Injector) injectMisuse(now uint64) {
	if len(in.filters) == 0 {
		return
	}
	f := in.filters[in.rngSched.Intn(len(in.filters))]
	t := in.rngSched.Intn(f.NumThreads)
	st := f.State(t)
	if st == filter.Waiting {
		return
	}
	core := in.rngSched.Intn(in.cores)
	in.nextID++
	txn := mem.Txn{Kind: mem.InvalD, Addr: f.ArrivalAddr(t), Core: core, ID: in.nextID}
	in.sys.InjectRequest(txn, now+1)
	in.MisuseInvals++
	in.record(now, "filter.misuse", core, f.ArrivalAddr(t),
		fmt.Sprintf("duplicate arrival for thread %d in state %s", t, st))
}

// injectEvict forcibly deallocates one live filter entry — a soft error in
// the table's valid bits, or the OS reclaiming an entry under capacity
// pressure. Parked fills on the victim come back as error fills
// immediately; its later arrival, exit, or re-issued fill hits the Evicted
// state and gets an error-coded response. Either way the run faults
// attributably and the degradation engine retries or falls back — the
// barrier can wedge only as far as the hardware timeout.
func (in *Injector) injectEvict(now uint64) {
	if len(in.filters) == 0 {
		return
	}
	f := in.filters[in.rngSched.Intn(len(in.filters))]
	t := in.rngSched.Intn(f.NumThreads)
	st := f.State(t)
	if st == filter.Evicted {
		return
	}
	_ = f.EvictThread(t) // t is in range by construction
	in.ForcedEvicts++
	in.record(now, "filter.evict", -1, f.ArrivalAddr(t),
		fmt.Sprintf("forced eviction of thread %d in state %s", t, st))
}

// injectLockEvict forcibly deallocates one live lock table entry. The lock
// FSM's eviction path does the rest: parked fills come back as error fills,
// an evicted holder frees the lock and grants the next waiter, and the
// victim's later acquire or release hits the Evicted state and faults
// attributably — mutual exclusion degrades, it never silently breaks.
func (in *Injector) injectLockEvict(now uint64) {
	if in.lockSrc == nil {
		return
	}
	locks := in.lockSrc()
	if len(locks) == 0 {
		return
	}
	l := locks[in.rngSched.Intn(len(locks))]
	t := in.rngSched.Intn(l.NumThreads)
	st := l.State(t)
	if st == filter.LockEvicted {
		return
	}
	_ = l.EvictThread(t) // t is in range by construction
	in.LockEvicts++
	in.record(now, "lock.evict", -1, l.LineAddr(t),
		fmt.Sprintf("forced eviction of lock %q thread %d in state %s", l.Name, t, st))
}

// injectFlip promotes one random valid Shared line in one core's L1D to
// Modified — a soft error in the tag/state array. Since the caches are
// timing-only (data lives in the backing Memory), the flip cannot corrupt
// functional results; it silently breaks the single-writer invariant, which
// only the sanitizer's MSI checker observes. The target set is the machine
// state at the scheduled cycle, which the fast-path invariance guarantees is
// identical on both execution paths, so replay determinism is preserved.
func (in *Injector) injectFlip(now uint64) {
	core := in.rngSched.Intn(in.cores)
	var shared []uint64
	for _, ln := range in.sys.L1D[core].Snapshot() {
		if ln.State == mem.Shared {
			shared = append(shared, ln.Addr)
		}
	}
	if len(shared) == 0 {
		return
	}
	addr := shared[in.rngSched.Intn(len(shared))]
	in.sys.L1D[core].InjectState(addr, mem.Modified)
	in.StateFlips++
	in.record(now, "l1.state-flip", core, addr, "S->M soft error in the tag/state array")
}

// PreemptEvent is one entry of a preemption plan: at machine cycle At, pull
// thread TID off its core for Gap cycles (the harness reschedules it on a
// free core, migrating when one is available).
type PreemptEvent struct {
	At  uint64
	TID int
	Gap uint64
}

// PreemptPlan derives a deterministic preemption schedule from the seed.
func (p Profile) PreemptPlan(seed uint64, nthreads int, horizon uint64) []PreemptEvent {
	if p.PreemptEvery == 0 || nthreads == 0 {
		return nil
	}
	r := sim.NewRand(MixSeed(seed, 5))
	var evs []PreemptEvent
	at := uint64(0)
	for {
		at += 1 + uint64(r.Intn(int(2*p.PreemptEvery)))
		if at >= horizon {
			return evs
		}
		gap := uint64(1)
		if p.PreemptGap > 0 {
			gap = 1 + uint64(r.Intn(int(2*p.PreemptGap)))
		}
		evs = append(evs, PreemptEvent{At: at, TID: r.Intn(nthreads), Gap: gap})
	}
}
