# hello.s — plain single-threaded SRISC demo for cmd/srisc-as and
# cmd/cmpsim (no barrier pseudo-ops).
#
#   go run ./cmd/srisc-as examples/asm/hello.s
#   go run ./cmd/cmpsim examples/asm/hello.s

	la   t0, msg
	ld   t1, 0(t0)     # 6
	ld   t2, 8(t0)     # 7
	mul  t3, t1, t2
	out  t3            # 42
	halt

	.data
	.align 8
msg:
	.quad 6, 7
