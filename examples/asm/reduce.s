# reduce.s — SPMD tree-free reduction demo for cmd/cmpsim.
#
# Each thread stores (tid+1)^2 into its slot, crosses a barrier (expanded
# by cmpsim's -barrier flag), and thread 0 sums and prints the result.
#
#   go run ./cmd/cmpsim -cores 8 -threads 8 -barrier filter-d examples/asm/reduce.s

	la   t0, slots
	slli t1, a0, 6        # tid * 64 (one line per thread)
	add  t0, t0, t1
	addi t1, a0, 1
	mul  t1, t1, t1       # (tid+1)^2
	st   t1, 0(t0)

	barrier

	bnez a0, done         # only thread 0 reduces
	la   t0, slots
	li   t1, 0
	mv   t2, a1           # nthreads
sum:
	ld   t3, 0(t0)
	add  t1, t1, t3
	addi t0, t0, 64
	addi t2, t2, -1
	bnez t2, sum
	out  t1
done:
	# falls through to the HALT barrier.BuildProgram appends

	.data
	.align 64
slots:
	.space 4096
