// Quickstart: run a tiny SPMD program on a 4-core simulated CMP using an
// I-cache barrier filter.
//
// Each thread writes its thread id into a private slot, crosses a barrier
// filter, and then sums every thread's slot — a result that is only correct
// if the barrier actually synchronized the writes with the reads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cmpfb "repro"
	"repro/internal/isa"
)

func main() {
	const threads = 4
	cfg := cmpfb.DefaultConfig(threads)
	alloc := cmpfb.NewAllocator(cfg)

	// An I-cache barrier filter: arrival addresses are code lines, and a
	// thread stalls by instruction-fetch starvation until all arrive.
	gen := cmpfb.MustNewBarrier(cmpfb.FilterI, threads, alloc)

	prog, err := cmpfb.BuildSPMD(gen, func(b *cmpfb.ProgramBuilder) {
		const (
			t0 = isa.RegT0
			t1 = isa.RegT0 + 1
			t2 = isa.RegT0 + 2
		)
		// slots[tid] = tid + 1 (one cache line per thread).
		b.LA(t0, "slots")
		b.SLLI(t1, isa.RegA0, 6)
		b.ADD(t0, t0, t1)
		b.ADDI(t1, isa.RegA0, 1)
		b.ST(t1, t0, 0)

		gen.EmitBarrier(b) // no thread proceeds until every slot is written

		// sum = Σ slots[i]; every thread prints it via OUT.
		b.LA(t0, "slots")
		b.LI(t1, 0) // sum
		b.LI(t2, threads)
		loop := b.NewLabel("sum")
		b.Label(loop)
		b.LD(isa.RegT0+3, t0, 0)
		b.ADD(t1, t1, isa.RegT0+3)
		b.ADDI(t0, t0, 64)
		b.ADDI(t2, t2, -1)
		b.BNEZ(t2, loop)
		b.OUT(t1)

		b.AlignData(64)
		b.DataLabel("slots")
		b.Space(threads * 64)
	})
	if err != nil {
		log.Fatal(err)
	}

	m := cmpfb.NewMachine(cfg)
	if err := cmpfb.Launch(m, gen, prog, threads); err != nil {
		log.Fatal(err)
	}
	cycles, err := m.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}

	want := uint64(threads * (threads + 1) / 2)
	fmt.Printf("ran %d cycles on %d cores with a %s barrier\n", cycles, threads, gen.Kind())
	for i, c := range m.Cores {
		fmt.Printf("  thread %d saw sum = %d (want %d)\n", i, c.Console[0], want)
	}
}
