// Latency: the Figure 4 barrier-latency microbenchmark as a runnable
// example — a loop of back-to-back barriers with no work between them,
// measured for every mechanism across core counts.
//
//	go run ./examples/latency [-k 16] [-m 8]
package main

import (
	"flag"
	"fmt"
	"log"

	cmpfb "repro"
	"repro/internal/isa"
)

func main() {
	k := flag.Int("k", 16, "consecutive barriers per loop iteration (paper: 64)")
	m := flag.Int("m", 8, "loop iterations (paper: 64)")
	flag.Parse()

	fmt.Printf("average cycles per barrier (%d barriers x %d iterations)\n", *k, *m)
	fmt.Printf("%-8s", "cores")
	for _, kind := range cmpfb.BarrierKinds {
		fmt.Printf("%12s", kind)
	}
	fmt.Println()

	for _, cores := range []int{4, 8, 16, 32} {
		fmt.Printf("%-8d", cores)
		for _, kind := range cmpfb.BarrierKinds {
			cfg := cmpfb.DefaultConfig(cores)
			alloc := cmpfb.NewAllocator(cfg)
			gen, err := cmpfb.NewBarrier(kind, cores, alloc)
			if err != nil {
				log.Fatal(err)
			}
			prog, err := cmpfb.BuildSPMD(gen, func(b *cmpfb.ProgramBuilder) {
				b.LI(isa.RegS0, int64(*m))
				outer := b.NewLabel("outer")
				b.Label(outer)
				for i := 0; i < *k; i++ {
					gen.EmitBarrier(b)
				}
				b.ADDI(isa.RegS0, isa.RegS0, -1)
				b.BNEZ(isa.RegS0, outer)
			})
			if err != nil {
				log.Fatal(err)
			}
			mach := cmpfb.NewMachine(cfg)
			if err := cmpfb.Launch(mach, gen, prog, cores); err != nil {
				log.Fatal(err)
			}
			cycles, err := mach.Run(1_000_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.1f", float64(cycles)/float64((*k)*(*m)))
		}
		fmt.Println()
	}
}
