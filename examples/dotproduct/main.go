// Dotproduct: the Livermore loop 3 inner product (the paper's Figure 8
// workload) distributed across 16 cores, comparing all seven barrier
// mechanisms against sequential execution — a miniature of Table 1's
// methodology, with results verified against the Go reference.
//
//	go run ./examples/dotproduct [-n 256] [-cores 16]
package main

import (
	"flag"
	"fmt"
	"log"

	cmpfb "repro"
)

func main() {
	n := flag.Int("n", 256, "vector length")
	cores := flag.Int("cores", 16, "cores / threads")
	flag.Parse()

	const loops = 3
	seqKernel := cmpfb.NewLivermore3(*n, loops)

	// Sequential baseline.
	seqProg, err := seqKernel.BuildSeq()
	if err != nil {
		log.Fatal(err)
	}
	seqM := cmpfb.NewMachine(cmpfb.DefaultConfig(1))
	seqM.Load(seqProg)
	seqM.StartSPMD(seqProg.Entry, 1)
	seqCycles, err := seqM.Run(100_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if err := seqKernel.Verify(seqM.Sys.Mem, seqProg, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("livermore3 N=%d, %d repetitions\n", *n, loops)
	fmt.Printf("%-14s %10d cycles (baseline)\n", "sequential", seqCycles)

	for _, kind := range cmpfb.BarrierKinds {
		cfg := cmpfb.DefaultConfig(*cores)
		alloc := cmpfb.NewAllocator(cfg)
		gen, err := cmpfb.NewBarrier(kind, *cores, alloc)
		if err != nil {
			log.Fatal(err)
		}
		k := cmpfb.NewLivermore3(*n, loops)
		prog, err := k.BuildPar(gen, *cores)
		if err != nil {
			log.Fatal(err)
		}
		m := cmpfb.NewMachine(cfg)
		if err := cmpfb.Launch(m, gen, prog, *cores); err != nil {
			log.Fatal(err)
		}
		cycles, err := m.Run(500_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.Verify(m.Sys.Mem, prog, *cores); err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		fmt.Printf("%-14s %10d cycles   speedup %5.2fx\n",
			kind, cycles, float64(seqCycles)/float64(cycles))
	}
}
