// SMT: the same 16 threads packed three ways — 16 single-threaded cores,
// 8 dual-context cores, 4 quad-context (Niagara-like) cores — running the
// autocorrelation kernel with a D-cache filter barrier. Contexts share
// their core's L1 caches and MSHRs (§3.2.1), so denser packings trade
// per-thread pipeline and cache bandwidth for fewer physical cores.
//
//	go run ./examples/smt
package main

import (
	"fmt"
	"log"

	cmpfb "repro"
)

func main() {
	const threads = 16
	k := cmpfb.NewAutcor(1024, 8, 2)

	fmt.Println("autcor, 16 threads with a filter-d barrier, varying core packing:")
	fmt.Printf("%-22s %12s %8s\n", "topology", "cycles", "vs 16x1")
	var base uint64
	for _, tpc := range []int{1, 2, 4} {
		cfg := cmpfb.DefaultConfig(threads / tpc)
		cfg.ThreadsPerCore = tpc
		alloc := cmpfb.NewAllocator(cfg)
		gen, err := cmpfb.NewBarrier(cmpfb.FilterD, threads, alloc)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := k.BuildPar(gen, threads)
		if err != nil {
			log.Fatal(err)
		}
		m := cmpfb.NewMachine(cfg)
		if err := cmpfb.Launch(m, gen, prog, threads); err != nil {
			log.Fatal(err)
		}
		cycles, err := m.Run(500_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.Verify(m.Sys.Mem, prog, threads); err != nil {
			log.Fatal(err)
		}
		if tpc == 1 {
			base = cycles
		}
		fmt.Printf("%2d cores x %d contexts  %12d %7.2fx\n",
			threads/tpc, tpc, cycles, float64(cycles)/float64(base))
	}
	fmt.Println("\n(results verified against the Go reference in every configuration)")
}
