// Wavefront: the Livermore loop 6 linear recurrence (the paper's Figure 10
// workload), showing where the parallel wavefront with fast barriers starts
// to beat sequential execution as the vector length grows — the crossover
// the paper reports at N around 64 for filter barriers.
//
//	go run ./examples/wavefront [-cores 16]
package main

import (
	"flag"
	"fmt"
	"log"

	cmpfb "repro"
)

func run(kind cmpfb.BarrierKind, cores, n int) uint64 {
	cfg := cmpfb.DefaultConfig(cores)
	alloc := cmpfb.NewAllocator(cfg)
	gen, err := cmpfb.NewBarrier(kind, cores, alloc)
	if err != nil {
		log.Fatal(err)
	}
	k := cmpfb.NewLivermore6(n, 1)
	prog, err := k.BuildPar(gen, cores)
	if err != nil {
		log.Fatal(err)
	}
	m := cmpfb.NewMachine(cfg)
	if err := cmpfb.Launch(m, gen, prog, cores); err != nil {
		log.Fatal(err)
	}
	cycles, err := m.Run(2_000_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Verify(m.Sys.Mem, prog, cores); err != nil {
		log.Fatalf("%s N=%d: %v", kind, n, err)
	}
	return cycles
}

func main() {
	cores := flag.Int("cores", 16, "cores / threads")
	flag.Parse()

	fmt.Printf("livermore6 wavefront on %d cores: execution time vs vector length\n", *cores)
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "N", "sequential", "sw-central", "filter-i-pp", "hw-net")
	for _, n := range []int{16, 32, 64, 128, 256} {
		k := cmpfb.NewLivermore6(n, 1)
		prog, err := k.BuildSeq()
		if err != nil {
			log.Fatal(err)
		}
		m := cmpfb.NewMachine(cmpfb.DefaultConfig(1))
		m.Load(prog)
		m.StartSPMD(prog.Entry, 1)
		seq, err := m.Run(2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.Verify(m.Sys.Mem, prog, 1); err != nil {
			log.Fatal(err)
		}
		sw := run(cmpfb.SWCentral, *cores, n)
		fi := run(cmpfb.FilterIPP, *cores, n)
		hw := run(cmpfb.HWNet, *cores, n)
		mark := func(v uint64) string {
			if v < seq {
				return "*" // parallel wins
			}
			return " "
		}
		fmt.Printf("%-6d %12d %11d%s %11d%s %11d%s\n",
			n, seq, sw, mark(sw), fi, mark(fi), hw, mark(hw))
	}
	fmt.Println("(* = faster than sequential; note where each column crosses over)")
}
