// Custombarrier: extending the library with a user-defined barrier
// mechanism through the public BarrierGenerator interface.
//
// The mechanism implemented here is a *flat sense-reversal flag tree with
// per-thread arrival flags* (sometimes called a "dissemination-lite" or
// flag barrier): every thread sets its own arrival flag (one cache line
// each) and thread 0 spins over all of them, then flips a release flag.
// It is a software barrier the paper did not evaluate, and slots into the
// same harness as the built-in seven — the example races it against
// sw-central and filter-d on the Figure 4 microbenchmark.
//
//	go run ./examples/custombarrier
package main

import (
	"fmt"
	"log"

	cmpfb "repro"
	"repro/internal/isa"
)

// flagBarrier implements cmpfb.BarrierGenerator.
type flagBarrier struct {
	nthreads    int
	arriveBase  uint64 // one line per thread
	releaseAddr uint64
}

const (
	regArrive  = 24 // own arrival flag address
	regBase    = 25 // arrival flag array base
	regRelease = 26 // release flag address
	regSense   = 28
	tmp1       = 30
	tmp2       = 31
)

func newFlagBarrier(nthreads int, alloc *cmpfb.Allocator) *flagBarrier {
	return &flagBarrier{
		nthreads:    nthreads,
		arriveBase:  alloc.AllocLines(nthreads),
		releaseAddr: alloc.AllocLines(1),
	}
}

func (f *flagBarrier) Kind() cmpfb.BarrierKind { return cmpfb.SWCentral } // closest built-in class
func (f *flagBarrier) Describe() string {
	return fmt.Sprintf("flag barrier (%d arrival lines + release flag)", f.nthreads)
}

func (f *flagBarrier) EmitSetup(b *cmpfb.ProgramBuilder) {
	b.LI(regBase, int64(f.arriveBase))
	b.SLLI(tmp1, isa.RegA0, 6)
	b.ADD(regArrive, regBase, tmp1)
	b.LI(regRelease, int64(f.releaseAddr))
	b.LI(regSense, 0)
}

func (f *flagBarrier) EmitBarrier(b *cmpfb.ProgramBuilder) {
	b.FENCE()
	b.XORI(regSense, regSense, 1)
	b.ST(regSense, regArrive, 0) // announce arrival

	done := b.NewLabel("fbdone")
	notZero := b.NewLabel("fbnz")
	b.BNEZ(isa.RegA0, notZero)
	// Thread 0 gathers: spin until every arrival flag equals sense.
	gather := b.NewLabel("fbgather")
	b.Label(gather)
	b.MV(tmp1, regBase)
	b.LI(tmp2, int64(f.nthreads))
	scan := b.NewLabel("fbscan")
	b.Label(scan)
	b.LD(29, tmp1, 0)
	b.BNE(29, regSense, gather) // any laggard: restart the scan
	b.ADDI(tmp1, tmp1, 64)
	b.ADDI(tmp2, tmp2, -1)
	b.BNEZ(tmp2, scan)
	b.ST(regSense, regRelease, 0) // release everyone
	b.J(done)
	// Other threads spin on the release flag.
	b.Label(notZero)
	spin := b.NewLabel("fbspin")
	b.Label(spin)
	b.LD(tmp1, regRelease, 0)
	b.BNE(tmp1, regSense, spin)
	b.Label(done)
	b.FENCE()
}

func (f *flagBarrier) EmitAux(b *cmpfb.ProgramBuilder) {}

func (f *flagBarrier) Install(m *cmpfb.Machine, p *cmpfb.Program) error { return nil }

func measure(gen cmpfb.BarrierGenerator, cfg cmpfb.Config, threads int) float64 {
	const K, M = 16, 8
	prog, err := cmpfb.BuildSPMD(gen, func(b *cmpfb.ProgramBuilder) {
		b.LI(isa.RegS0, M)
		outer := b.NewLabel("outer")
		b.Label(outer)
		for i := 0; i < K; i++ {
			gen.EmitBarrier(b)
		}
		b.ADDI(isa.RegS0, isa.RegS0, -1)
		b.BNEZ(isa.RegS0, outer)
	})
	if err != nil {
		log.Fatal(err)
	}
	m := cmpfb.NewMachine(cfg)
	if err := cmpfb.Launch(m, gen, prog, threads); err != nil {
		log.Fatal(err)
	}
	cycles, err := m.Run(200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	return float64(cycles) / (K * M)
}

func main() {
	const threads = 16
	fmt.Printf("barrier latency on %d cores (cycles/barrier):\n", threads)

	cfg := cmpfb.DefaultConfig(threads)
	fb := newFlagBarrier(threads, cmpfb.NewAllocator(cfg))
	fmt.Printf("  %-22s %8.1f   <- user-defined mechanism\n", fb.Describe(), measure(fb, cfg, threads))

	for _, kind := range []cmpfb.BarrierKind{cmpfb.SWCentral, cmpfb.SWTree, cmpfb.FilterD} {
		cfg := cmpfb.DefaultConfig(threads)
		gen := cmpfb.MustNewBarrier(kind, threads, cmpfb.NewAllocator(cfg))
		fmt.Printf("  %-22s %8.1f\n", kind, measure(gen, cfg, threads))
	}
}
