// Differential test for the quiescent-core fast path: every configuration
// must produce bit-identical cycle counts, statistics, and outcomes with the
// fast path on and off. The fast path only ever skips pipeline ticks it has
// proved to be no-ops (and credits their per-cycle counters), so any
// divergence here is a bug in that proof.
package cmpfb

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/barrier"
	"repro/internal/core"
	"repro/internal/kernels"
)

type fastSlowResult struct {
	cycles  uint64
	stats   string
	errText string
}

// runVariant runs one barrier workload on a fresh machine with the given
// fast-path setting.
func runVariant(t *testing.T, cores int, kind barrier.Kind,
	build func(gen barrier.Generator) (*asm.Program, error),
	tweak func(cfg *core.Config), noFastPath bool) fastSlowResult {
	t.Helper()
	cfg := core.DefaultConfig(cores)
	cfg.NoFastPath = noFastPath
	if tweak != nil {
		tweak(&cfg)
	}
	alloc := barrier.NewAllocator(cfg.Mem)
	gen, err := barrier.New(kind, cores, alloc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := build(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(cfg)
	if err := barrier.Launch(m, gen, prog, cores); err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run(100_000_000)
	res := fastSlowResult{cycles: cycles, stats: m.StatsReport().String()}
	if err != nil {
		res.errText = err.Error()
	}
	return res
}

func compareFastSlow(t *testing.T, fast, slow fastSlowResult) {
	t.Helper()
	if fast.errText != slow.errText {
		t.Fatalf("error diverged:\nfast: %q\nslow: %q", fast.errText, slow.errText)
	}
	if fast.cycles != slow.cycles {
		t.Fatalf("cycle count diverged: fast %d, slow %d", fast.cycles, slow.cycles)
	}
	if fast.stats != slow.stats {
		t.Fatalf("statistics diverged:\n--- fast ---\n%s--- slow ---\n%s", fast.stats, slow.stats)
	}
}

func TestFastPathDifferential(t *testing.T) {
	cases := []struct {
		name  string
		cores int
		kind  barrier.Kind
		build func(gen barrier.Generator) (*asm.Program, error)
		tweak func(cfg *core.Config)
	}{
		{
			// The fast path's main target: threads starved on parked
			// fills at a D-cache filter barrier.
			name: "microbench-filterD-16", cores: 16, kind: barrier.KindFilterD,
			build: func(gen barrier.Generator) (*asm.Program, error) {
				mb := &kernels.Microbench{K: 8, M: 4}
				return mb.BuildPar(gen, 16)
			},
		},
		{
			// Ping-pong filter variant with the hardware timeout armed
			// (exercises the filter's next-event query).
			name: "microbench-filterDPP-timeout-8", cores: 8, kind: barrier.KindFilterDPP,
			build: func(gen barrier.Generator) (*asm.Program, error) {
				mb := &kernels.Microbench{K: 8, M: 4}
				return mb.BuildPar(gen, 8)
			},
			tweak: func(cfg *core.Config) { cfg.FilterTimeout = 50_000 },
		},
		{
			// Software spin barrier: cores are rarely fully quiesced
			// (spinning reloads keep hitting), stressing the partial
			// per-core skip rather than the bulk fast-forward.
			name: "livermore2-swcentral-8", cores: 8, kind: barrier.KindSWCentral,
			build: func(gen barrier.Generator) (*asm.Program, error) {
				return kernels.NewLivermore2(64, 2).BuildPar(gen, 8)
			},
		},
		{
			// Real kernel on the filter barrier with a shared data bus.
			name: "viterbi-filterI-4-sharedbus", cores: 4, kind: barrier.KindFilterI,
			build: func(gen barrier.Generator) (*asm.Program, error) {
				return kernels.NewViterbi(32, 2).BuildPar(gen, 4)
			},
			tweak: func(cfg *core.Config) { cfg.Mem.SharedDataBus = true },
		},
		{
			// Dedicated barrier network (HWBAR never quiesces; the skip
			// logic must stay out of the way).
			name: "autcor-hwnet-8", cores: 8, kind: barrier.KindHWNet,
			build: func(gen barrier.Generator) (*asm.Program, error) {
				return kernels.NewAutcor(128, 4, 2).BuildPar(gen, 8)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slow := runVariant(t, tc.cores, tc.kind, tc.build, tc.tweak, true)
			fast := runVariant(t, tc.cores, tc.kind, tc.build, tc.tweak, false)
			compareFastSlow(t, fast, slow)
		})
	}
}

// TestFastPathDifferentialSeq covers the single-core sequential path (no
// barrier at all): long DRAM stalls are where a lone core quiesces.
func TestFastPathDifferentialSeq(t *testing.T) {
	run := func(noFastPath bool) fastSlowResult {
		cfg := core.DefaultConfig(1)
		cfg.NoFastPath = noFastPath
		prog, err := kernels.NewLivermore3(128, 2).BuildSeq()
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(cfg)
		m.Load(prog)
		m.StartSPMD(prog.Entry, 1)
		cycles, err := m.Run(100_000_000)
		res := fastSlowResult{cycles: cycles, stats: m.StatsReport().String()}
		if err != nil {
			res.errText = err.Error()
		}
		return res
	}
	compareFastSlow(t, run(false), run(true))
}

// TestFastPathDeadlockIdentical checks that a true deadlock (a barrier
// waiting for a thread that never arrives, no timeout) reports the same
// cycle-limit error at the same cycle either way: with every core quiesced
// and no memory event pending, the bulk fast-forward jumps straight to the
// limit the slow path crawls to.
func TestFastPathDeadlockIdentical(t *testing.T) {
	run := func(noFastPath bool) fastSlowResult {
		cfg := core.DefaultConfig(4)
		cfg.NoFastPath = noFastPath
		alloc := barrier.NewAllocator(cfg.Mem)
		gen, err := barrier.New(barrier.KindFilterD, 4, alloc)
		if err != nil {
			t.Fatal(err)
		}
		mb := &kernels.Microbench{K: 4, M: 2}
		prog, err := mb.BuildPar(gen, 4)
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(cfg)
		if err := barrier.Launch(m, gen, prog, 4); err != nil {
			t.Fatal(err)
		}
		// Pull one of the 4 registered threads off its core before it
		// runs: the barrier never opens and the other 3 starve forever.
		if _, _, err := m.Cores[3].Deschedule(); err != nil {
			t.Fatal(err)
		}
		cycles, err := m.Run(2_000_000)
		res := fastSlowResult{cycles: cycles, stats: m.StatsReport().String()}
		if err != nil {
			res.errText = err.Error()
		}
		return res
	}
	fast, slow := run(false), run(true)
	if fast.errText == "" {
		t.Fatal("expected a cycle-limit error from the deadlocked barrier")
	}
	compareFastSlow(t, fast, slow)
}
