// Package cmpfb (Chip-MultiProcessor Fast Barriers) is the public API of
// this reproduction of "Exploiting Fine-Grained Data Parallelism with Chip
// Multiprocessors and Fast Barriers" (Sampson et al., MICRO 2006).
//
// It re-exports the pieces a user composes:
//
//   - a cycle-level CMP simulator (out-of-order SRISC cores, private L1s,
//     banked shared L2 with a directory, L3, DRAM, shared address bus with
//     a per-bank data crossbar): NewMachine / DefaultConfig;
//   - the barrier filter hardware and the seven barrier mechanisms of the
//     paper (software centralized & combining tree, dedicated network,
//     I-/D-cache barrier filters and their ping-pong variants): NewBarrier;
//   - an SRISC assembler (Assemble, NewProgramBuilder) and the paper's
//     kernels (Livermore loops 2/3/6, autocorrelation, Viterbi);
//   - the experiment harness that regenerates every table and figure of
//     the paper's evaluation (Table1, Fig4..Fig10).
//
// # Quick start
//
//	cfg := cmpfb.DefaultConfig(16)
//	alloc := cmpfb.NewAllocator(cfg)
//	gen := cmpfb.MustNewBarrier(cmpfb.FilterI, 16, alloc)
//	prog, _ := cmpfb.BuildSPMD(gen, func(b *cmpfb.ProgramBuilder) {
//	    gen.EmitBarrier(b) // ... your kernel, with barriers ...
//	})
//	m := cmpfb.NewMachine(cfg)
//	cmpfb.Launch(m, gen, prog, 16)
//	cycles, err := m.Run(1_000_000)
//
// See examples/ for complete programs and DESIGN.md for the system map.
package cmpfb

import (
	"repro/internal/asm"
	"repro/internal/barrier"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/osmodel"
)

// Machine is the simulated CMP.
type Machine = core.Machine

// Config configures a Machine (cores, memory system, pipeline, filters).
type Config = core.Config

// NewMachine builds a machine.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// DefaultConfig returns the paper's Table 2 machine for a core count.
func DefaultConfig(cores int) Config { return core.DefaultConfig(cores) }

// Memory-map constants for hand-written programs.
const (
	TextBase = core.TextBase
	DataBase = core.DataBase
)

// BarrierKind selects one of the paper's seven barrier mechanisms.
type BarrierKind = barrier.Kind

// The seven mechanisms.
const (
	SWCentral = barrier.KindSWCentral
	SWTree    = barrier.KindSWTree
	HWNet     = barrier.KindHWNet
	FilterI   = barrier.KindFilterI
	FilterD   = barrier.KindFilterD
	FilterIPP = barrier.KindFilterIPP
	FilterDPP = barrier.KindFilterDPP
)

// BarrierKinds lists every mechanism in the paper's order.
var BarrierKinds = barrier.Kinds

// BarrierGenerator emits a barrier's code and installs its hardware.
type BarrierGenerator = barrier.Generator

// Allocator hands out barrier line addresses under the paper's OS rules.
type Allocator = barrier.Allocator

// NewAllocator creates a barrier address allocator for a machine
// configuration.
func NewAllocator(cfg Config) *Allocator {
	return barrier.NewAllocator(cfg.Mem)
}

// Filter is the barrier-filter hardware state table.
type Filter = filter.Filter

// ProgramBuilder emits SRISC instructions programmatically.
type ProgramBuilder = asm.Builder

// Program is a linked SRISC image.
type Program = asm.Program

// Assemble translates SRISC assembly text into a Program.
func Assemble(src string) (*Program, error) {
	return asm.Assemble(src, core.TextBase, core.DataBase)
}

// NewProgramBuilder returns a builder over the standard memory map.
func NewProgramBuilder() *ProgramBuilder {
	return asm.NewBuilder(core.TextBase, core.DataBase)
}

// NewBarrier constructs a barrier generator of the given kind.
func NewBarrier(kind BarrierKind, nthreads int, alloc *Allocator) (BarrierGenerator, error) {
	return barrier.New(kind, nthreads, alloc)
}

// MustNewBarrier panics on error.
func MustNewBarrier(kind BarrierKind, nthreads int, alloc *Allocator) BarrierGenerator {
	return barrier.MustNew(kind, nthreads, alloc)
}

// BuildSPMD composes barrier setup, the caller's body and barrier stubs
// into a runnable SPMD program.
func BuildSPMD(gen BarrierGenerator, body func(b *ProgramBuilder)) (*Program, error) {
	return barrier.BuildProgram(gen, body)
}

// Launch loads the program, installs the barrier hardware and starts
// nthreads SPMD threads.
func Launch(m *Machine, gen BarrierGenerator, p *Program, nthreads int) error {
	return barrier.Launch(m, gen, p, nthreads)
}

// Kernel is one of the paper's workloads.
type Kernel = kernels.Kernel

// Kernel constructors (sequential + parallel builds, with Go references).
var (
	NewLivermore2 = kernels.NewLivermore2
	NewLivermore3 = kernels.NewLivermore3
	NewLivermore6 = kernels.NewLivermore6
	NewAutcor     = kernels.NewAutcor
	NewViterbi    = kernels.NewViterbi
)

// BarrierManager is the OS barrier library (registration, fallback, swap).
type BarrierManager = osmodel.Manager

// NewBarrierManager creates the OS barrier library for a machine.
func NewBarrierManager(m *Machine) *BarrierManager { return osmodel.NewManager(m) }

// Scheduler maps software threads to cores with §3.3.3 context switching.
type Scheduler = osmodel.Scheduler

// NewScheduler creates a scheduler over a machine's cores.
func NewScheduler(m *Machine) *Scheduler { return osmodel.NewScheduler(m) }

// Experiment harness re-exports: each regenerates one paper table/figure.
type (
	// ExperimentOptions tunes experiment cost and verification.
	ExperimentOptions = harness.Options
	// LatencyPoint is one Figure 4 cell.
	LatencyPoint = harness.LatencyPoint
	// SpeedupRow is one Table 1 / Figure 5 / Figure 6 row.
	SpeedupRow = harness.SpeedupRow
	// TimeSeries is one Figure 7/8/10 sweep.
	TimeSeries = harness.TimeSeries
)

// Experiment entry points.
var (
	DefaultExperimentOptions = harness.DefaultOptions
	QuickExperimentOptions   = harness.QuickOptions
	Table1                   = harness.Table1
	Fig4                     = harness.Fig4
	Fig5                     = harness.Fig5
	Fig6                     = harness.Fig6
	Fig7                     = harness.Fig7
	Fig8                     = harness.Fig8
	Fig10                    = harness.Fig10
)
