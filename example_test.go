package cmpfb_test

import (
	"fmt"
	"log"

	cmpfb "repro"
	"repro/internal/isa"
)

// Example demonstrates the complete flow: build a barrier, compose an SPMD
// program around it, run it on the simulated CMP, and read results back.
func Example() {
	const threads = 4
	cfg := cmpfb.DefaultConfig(threads)
	alloc := cmpfb.NewAllocator(cfg)
	gen := cmpfb.MustNewBarrier(cmpfb.FilterD, threads, alloc)

	prog, err := cmpfb.BuildSPMD(gen, func(b *cmpfb.ProgramBuilder) {
		// Each thread writes tid+1 to its private slot...
		b.LA(isa.RegT0, "slots")
		b.SLLI(isa.RegT0+1, isa.RegA0, 6)
		b.ADD(isa.RegT0, isa.RegT0, isa.RegT0+1)
		b.ADDI(isa.RegT0+1, isa.RegA0, 1)
		b.ST(isa.RegT0+1, isa.RegT0, 0)
		// ...crosses the barrier filter...
		gen.EmitBarrier(b)
		// ...and thread 0 sums all slots.
		done := b.NewLabel("done")
		b.BNEZ(isa.RegA0, done)
		b.LA(isa.RegT0, "slots")
		b.LI(isa.RegT0+1, 0)
		b.LI(isa.RegT0+2, threads)
		loop := b.NewLabel("loop")
		b.Label(loop)
		b.LD(isa.RegT0+3, isa.RegT0, 0)
		b.ADD(isa.RegT0+1, isa.RegT0+1, isa.RegT0+3)
		b.ADDI(isa.RegT0, isa.RegT0, 64)
		b.ADDI(isa.RegT0+2, isa.RegT0+2, -1)
		b.BNEZ(isa.RegT0+2, loop)
		b.OUT(isa.RegT0 + 1)
		b.Label(done)
		b.AlignData(64)
		b.DataLabel("slots")
		b.Space(threads * 64)
	})
	if err != nil {
		log.Fatal(err)
	}

	m := cmpfb.NewMachine(cfg)
	if err := cmpfb.Launch(m, gen, prog, threads); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum:", m.Cores[0].Console[0])
	// Output: sum: 10
}

// ExampleAssemble runs a hand-written SRISC program on one core.
func ExampleAssemble() {
	prog, err := cmpfb.Assemble(`
	li   t0, 1
	li   t1, 10
	li   t2, 0
loop:
	add  t2, t2, t0
	addi t0, t0, 1
	ble  t0, t1, loop
	out  t2
	halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	m := cmpfb.NewMachine(cmpfb.DefaultConfig(1))
	m.Load(prog)
	m.StartSPMD(prog.Entry, 1)
	if _, err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1+..+10 =", m.Cores[0].Console[0])
	// Output: 1+..+10 = 55
}

// ExampleNewLivermore3 runs a paper kernel sequentially and verifies it
// against its Go reference.
func ExampleNewLivermore3() {
	k := cmpfb.NewLivermore3(64, 1)
	prog, err := k.BuildSeq()
	if err != nil {
		log.Fatal(err)
	}
	m := cmpfb.NewMachine(cmpfb.DefaultConfig(1))
	m.Load(prog)
	m.StartSPMD(prog.Entry, 1)
	if _, err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", k.Verify(m.Sys.Mem, prog, 1) == nil)
	// Output: verified: true
}

// ExampleNewBarrierManager shows the OS-style registration flow with
// fallback when the filter hardware is exhausted.
func ExampleNewBarrierManager() {
	cfg := cmpfb.DefaultConfig(4)
	cfg.FilterSlotsPerBank = 0 // pretend another application holds them all
	m := cmpfb.NewMachine(cfg)
	mgr := cmpfb.NewBarrierManager(m)
	h, err := mgr.Register(cmpfb.FilterI, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("requested:", h.Requested)
	fmt.Println("granted:  ", h.Granted)
	// Output:
	// requested: filter-i
	// granted:   sw-central
}
