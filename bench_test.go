// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a machine-readable version of the paper's results. The quick
// experiment options are used so the full suite completes in minutes; run
// cmd/bench with -full for the paper-sized configuration.
package cmpfb

import (
	"fmt"
	"testing"

	"repro/internal/barrier"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/interconnect"
	"repro/internal/kernels"
	"repro/internal/mem"
)

func benchOptions() harness.Options {
	o := harness.QuickOptions()
	o.Verify = true
	return o
}

// BenchmarkTable1 regenerates Table 1: best software-barrier speedups for
// the five kernels on 16 cores (plus the filter numbers).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.BestSoftware(), r.Kernel+"_swbest_x")
			b.ReportMetric(r.BestFilter(), r.Kernel+"_filterbest_x")
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: average barrier latency for every
// mechanism at 4..64 cores.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := harness.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.AvgCycles, fmt.Sprintf("%s_%dc_cyc", p.Kind, p.Cores))
		}
	}
}

func benchSpeedupRow(b *testing.B, run func(harness.Options) (harness.SpeedupRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		row, err := run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range barrier.Kinds {
			b.ReportMetric(row.Speedup[k], k.String()+"_x")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: autocorrelation speedups.
func BenchmarkFig5(b *testing.B) { benchSpeedupRow(b, harness.Fig5) }

// BenchmarkFig6 regenerates Figure 6: Viterbi speedups.
func BenchmarkFig6(b *testing.B) { benchSpeedupRow(b, harness.Fig6) }

func benchTimeSeries(b *testing.B, run func(harness.Options) (harness.TimeSeries, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ts, err := run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Report the parallel-vs-sequential crossover metric per
		// mechanism: the smallest N at which the parallel version wins.
		for _, k := range barrier.Kinds {
			cross := -1.0
			for i, n := range ts.Lengths {
				if ts.Par[k][i] < ts.Seq[i] {
					cross = float64(n)
					break
				}
			}
			b.ReportMetric(cross, k.String()+"_crossN")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (Livermore loop 2 time vs N).
func BenchmarkFig7(b *testing.B) { benchTimeSeries(b, harness.Fig7) }

// BenchmarkFig8 regenerates Figure 8 (Livermore loop 3 time vs N).
func BenchmarkFig8(b *testing.B) { benchTimeSeries(b, harness.Fig8) }

// BenchmarkFig10 regenerates Figure 10 (Livermore loop 6 time vs N).
func BenchmarkFig10(b *testing.B) { benchTimeSeries(b, harness.Fig10) }

// --- ablations (design choices called out in DESIGN.md §5) -----------------

// latencyAt measures one mechanism's barrier latency on a custom config.
func latencyAt(b *testing.B, cfg core.Config, kind barrier.Kind, n int) float64 {
	b.Helper()
	alloc := barrier.NewAllocator(cfg.Mem)
	gen, err := barrier.New(kind, n, alloc)
	if err != nil {
		b.Fatal(err)
	}
	mb := &kernels.Microbench{K: 16, M: 8}
	prog, err := mb.BuildPar(gen, n)
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewMachine(cfg)
	if err := barrier.Launch(m, gen, prog, n); err != nil {
		b.Fatal(err)
	}
	cycles, err := m.Run(500_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return float64(cycles) / float64(mb.Invocations())
}

// BenchmarkAblationFilterBW compares the paper's 1-request/cycle filter
// service rate against an idealized 4/cycle rate (release serialization).
func BenchmarkAblationFilterBW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bw := range []int{1, 4} {
			cfg := core.DefaultConfig(16)
			cfg.Mem.FilterBW = bw
			lat := latencyAt(b, cfg, barrier.KindFilterD, 16)
			b.ReportMetric(lat, fmt.Sprintf("filterbw%d_cyc", bw))
		}
	}
}

// BenchmarkAblationSharedDataBus compares the default per-bank data
// crossbar against a single shared data bus (the >16-core saturation
// discussion of §4.2).
func BenchmarkAblationSharedDataBus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, shared := range []bool{false, true} {
			cfg := core.DefaultConfig(32)
			cfg.Mem.SharedDataBus = shared
			lat := latencyAt(b, cfg, barrier.KindFilterD, 32)
			name := "crossbar_cyc"
			if shared {
				name = "sharedbus_cyc"
			}
			b.ReportMetric(lat, name)
		}
	}
}

// BenchmarkAblationMSHR shows that one data MSHR per core suffices for
// filter barriers (§3.2.1), at some cost to the surrounding kernel.
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mshrs := range []int{1, 8} {
			cfg := core.DefaultConfig(16)
			cfg.Mem.MSHRs = mshrs
			lat := latencyAt(b, cfg, barrier.KindFilterD, 16)
			b.ReportMetric(lat, fmt.Sprintf("mshr%d_cyc", mshrs))
		}
	}
}

// BenchmarkAblationBusWidth sweeps the data-path width (line transfer
// occupancy), which moves the bus-saturation point.
func BenchmarkAblationBusWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, width := range []int{8, 16, 32} {
			cfg := core.DefaultConfig(32)
			cfg.Mem.DataBusBytesPerCycle = width
			lat := latencyAt(b, cfg, barrier.KindFilterIPP, 32)
			b.ReportMetric(lat, fmt.Sprintf("width%dB_cyc", width))
		}
	}
}

// BenchmarkFabricThroughput drives a fill storm through each interconnect
// topology at 8 and 32 cores. A first, untimed round streams every line in
// from DRAM (the serialized L3 bottlenecks that round identically on all
// fabrics); the timed round then has every core fetch its neighbour's
// lines, all L2-resident, so the fabric itself is the bottleneck: the bus
// serializes every request through one arbiter while the crossbar and mesh
// keep per-bank parallelism, and the gap widens with the core count.
func BenchmarkFabricThroughput(b *testing.B) {
	const linesPerCore = 64
	for _, cores := range []int{8, 32} {
		for _, fab := range interconnect.Kinds {
			b.Run(fmt.Sprintf("%s_%dc", fab, cores), func(b *testing.B) {
				var drainCycles uint64
				for i := 0; i < b.N; i++ {
					cfg := mem.DefaultConfig(cores)
					cfg.Fabric = fab
					// Deep MSHRs keep the timed round bandwidth-bound on
					// the fabric rather than latency-bound on bank round
					// trips.
					cfg.MSHRs = 32
					s := mem.NewSystem(cfg)
					addr := func(c, l int) uint64 {
						return uint64(0x10_0000 + (l*cores+c)*cfg.LineBytes)
					}
					now := uint64(0)
					// storm issues linesPerCore misses per core (core c
					// requesting owner (c+shift)'s lines) and runs the
					// system until drained, returning the cycles taken.
					storm := func(shift int) uint64 {
						start := now
						left := make([]int, cores)
						for c := range left {
							left[c] = linesPerCore
						}
						pending := cores * linesPerCore
						for ; pending > 0 || !s.Quiet(); now++ {
							for c := 0; c < cores; c++ {
								if left[c] > 0 && s.L1D[c].StartMiss(now, addr((c+shift)%cores, linesPerCore-left[c]), mem.GetS, false) {
									left[c]--
									pending--
								}
							}
							s.Tick(now)
							if now-start > 10_000_000 {
								b.Fatalf("%s/%dc: storm never drained", fab, cores)
							}
						}
						return now - start
					}
					storm(0) // warm: pull every line into the L2 banks
					drainCycles += storm(1)
				}
				b.ReportMetric(float64(drainCycles)/float64(b.N), "drain_cyc")
				b.ReportMetric(float64(cores*linesPerCore)*1000/(float64(drainCycles)/float64(b.N)), "lines/kcyc")
			})
		}
	}
}

// BenchmarkSimThroughput reports the simulator's own speed on a 16-core
// Livermore-2 run: simulated machine-cycles, core-cycles, and committed
// instructions per host second. This is the simulator-performance baseline
// for future optimisation work.
func BenchmarkSimThroughput(b *testing.B) {
	benchSimThroughput(b, false)
}

// BenchmarkSimThroughputNoTranslate is the same run with the basic-block
// translation cache disabled; the gap between the two is the translator's
// contribution to raw simulator speed (scripts/bench_translate.sh records
// both into BENCH_translate.json).
func BenchmarkSimThroughputNoTranslate(b *testing.B) {
	benchSimThroughput(b, true)
}

func benchSimThroughput(b *testing.B, noTranslate bool) {
	const nCores = 16
	cfg := core.DefaultConfig(nCores)
	cfg.NoTranslate = noTranslate
	alloc := barrier.NewAllocator(cfg.Mem)
	gen := barrier.MustNew(barrier.KindFilterD, nCores, alloc)
	prog, err := kernels.NewLivermore2(256, 2).BuildPar(gen, nCores)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var simCycles, insts uint64
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(cfg)
		if err := barrier.Launch(m, gen, prog, nCores); err != nil {
			b.Fatal(err)
		}
		c, err := m.Run(500_000_000)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += c
		insts += m.TotalCommitted()
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(simCycles)/sec, "simcycles/s")
	b.ReportMetric(float64(simCycles*nCores)/sec, "corecycles/s")
	b.ReportMetric(float64(insts)/sec, "inst/s")
}

// BenchmarkOcean regenerates the §4.1 coarse-grained measurement (the
// SPLASH-2 Ocean discussion): barriers are a small share of coarse-grained
// applications, so the filter's whole-program improvement is a few percent.
func BenchmarkOcean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.CoarseGrain(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Improvement*100, "filter_improvement_pct")
		b.ReportMetric(r.BarrierShareSW*100, "barrier_share_pct")
	}
}

// BenchmarkAblationSMT holds the thread count at 16 and varies how they are
// packed onto physical cores (16x1, 8x2, 4x4 Niagara-style contexts).
// Fewer physical cores means fewer L1s/MSHRs and less bus traffic for the
// same barrier population (§3.2.1).
func BenchmarkAblationSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tpc := range []int{1, 2, 4} {
			cfg := core.DefaultConfig(16 / tpc)
			cfg.ThreadsPerCore = tpc
			lat := latencyAt16Threads(b, cfg)
			b.ReportMetric(lat, fmt.Sprintf("cores%dx%d_cyc", 16/tpc, tpc))
		}
	}
}

// latencyAt16Threads measures the filter-D barrier latency for 16 logical
// threads on cfg.
func latencyAt16Threads(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	alloc := barrier.NewAllocator(cfg.Mem)
	gen, err := barrier.New(barrier.KindFilterD, 16, alloc)
	if err != nil {
		b.Fatal(err)
	}
	mb := &kernels.Microbench{K: 16, M: 8}
	prog, err := mb.BuildPar(gen, 16)
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewMachine(cfg)
	if err := barrier.Launch(m, gen, prog, 16); err != nil {
		b.Fatal(err)
	}
	cycles, err := m.Run(500_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return float64(cycles) / float64(mb.Invocations())
}
